//! Textual notation for MFTs — the paper's rule syntax.
//!
//! This lets tests and examples state transducers exactly as the paper
//! prints them, e.g. the `Mperson` transducer of §2.2:
//!
//! ```text
//! q0(%t(x1) x2)          -> out(q1(x0));
//! q1(person(x1) x2)      -> q2(x1, q4(x1)) q1(x2);
//! q1(%t(x1) x2)          -> q1(x1) q1(x2);
//! q2(p_id(x1) x2, y1)    -> q3(x1, y1, q2(x2, y1));
//! q2(%t(x1) x2, y1)      -> q2(x2, y1);
//! q3("person0"(x1) x2, y1, y2) -> y1;
//! q3(%t(x1) x2, y1, y2)  -> q3(x2, y1, y2);
//! q3(eps, y1, y2)        -> y2;
//! ...
//! ```
//!
//! Grammar (`;` separates rules; `//` starts a line comment):
//!
//! ```text
//! rule    := state '(' pattern { ',' yk } ')' '->' forest
//! pattern := sym '(' 'x1' ')' 'x2'   -- (q,σ)-rule, sym = NAME | STRING
//!          | '%t' '(' 'x1' ')' 'x2'  -- default rule
//!          | '%text' '(' 'x1' ')' 'x2' -- text-default rule (also '%ttext')
//!          | '%'                     -- stay shorthand: default AND ε rule
//!          | 'eps'                   -- ε-rule
//! forest  := { item } | 'eps'
//! item    := NAME '(' xvar { ',' forest } ')'   -- state call
//!          | NAME '(' forest ')' | NAME          -- output element
//!          | STRING                              -- output text node
//!          | '%t' '(' forest ')'                 -- copy current label
//!          | yk                                  -- parameter
//! ```
//!
//! A call is distinguished from an output node by its first argument being
//! `x0`/`x1`/`x2`. The state of the first rule is the initial state. Names
//! `x0..x2`, `y1..`, `eps` and `%`-forms are reserved.

use crate::mft::{rhs, Mft, OutLabel, Rhs, RhsNode, StateId, XVar};
use foxq_forest::{FxHashMap, Label, NodeKind};
use std::fmt::Write as _;

/// Parse error with line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MftTextError {
    pub line: usize,
    pub col: usize,
    pub msg: String,
}

impl std::fmt::Display for MftTextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MFT syntax error at {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for MftTextError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    Str(String),
    LPar,
    RPar,
    Comma,
    Semi,
    Arrow,
    Pct,     // %
    PctT,    // %t
    PctText, // %text / %ttext
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, MftTextError> {
        Err(MftTextError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        })
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn next_tok(&mut self) -> Result<(Tok, usize, usize), MftTextError> {
        loop {
            // Skip whitespace and // comments.
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        let (line, col) = (self.line, self.col);
        let tok = match self.peek() {
            None => Tok::Eof,
            Some(b'(') => {
                self.bump();
                Tok::LPar
            }
            Some(b')') => {
                self.bump();
                Tok::RPar
            }
            Some(b',') => {
                self.bump();
                Tok::Comma
            }
            Some(b';') => {
                self.bump();
                Tok::Semi
            }
            Some(b'-') => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    return self.err("expected '->'");
                }
            }
            Some(b'%') => {
                self.bump();
                let mut word = Vec::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() {
                        word.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match word.as_slice() {
                    b"" => Tok::Pct,
                    b"t" => Tok::PctT,
                    b"text" | b"ttext" => Tok::PctText,
                    _ => return self.err("unknown %-pattern (expected %, %t, %text)"),
                }
            }
            Some(b'"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return self.err("unterminated string"),
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            _ => return self.err("bad escape"),
                        },
                        Some(c) => s.push(c as char),
                    }
                }
                Tok::Str(s)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b':' | b'-') {
                        // '-' only continues a name if not part of '->'
                        if c == b'-' && self.src.get(self.pos + 1) == Some(&b'>') {
                            break;
                        }
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Name(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            Some(c) => return self.err(format!("unexpected character {:?}", c as char)),
        };
        Ok((tok, line, col))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: usize,
    col: usize,
    mft: Mft,
    state_names: FxHashMap<String, StateId>,
    /// States whose rank is only inferred from calls so far.
    inferred_only: FxHashMap<StateId, bool>,
}

enum Pattern {
    Sym(Label),
    Default,
    TextDefault,
    Stay,
    Eps,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, MftTextError> {
        let mut lexer = Lexer::new(src);
        let (tok, line, col) = lexer.next_tok()?;
        Ok(Parser {
            lexer,
            tok,
            line,
            col,
            mft: Mft::new(),
            state_names: FxHashMap::default(),
            inferred_only: FxHashMap::default(),
        })
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, MftTextError> {
        Err(MftTextError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        })
    }

    fn advance(&mut self) -> Result<(), MftTextError> {
        let (tok, line, col) = self.lexer.next_tok()?;
        self.tok = tok;
        self.line = line;
        self.col = col;
        Ok(())
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), MftTextError> {
        if self.tok == t {
            self.advance()
        } else {
            self.err(format!("expected {what}, found {:?}", self.tok))
        }
    }

    fn state_of(&mut self, name: &str, rank_hint: Option<usize>) -> Result<StateId, MftTextError> {
        if let Some(&id) = self.state_names.get(name) {
            if let Some(r) = rank_hint {
                if self.mft.params_of(id) != r {
                    // Rank conflicts with earlier inference: only allowed to
                    // fix states that were inferred from calls.
                    return self.err(format!(
                        "state {name} used with {r} parameter(s) but earlier with {}",
                        self.mft.params_of(id)
                    ));
                }
            }
            return Ok(id);
        }
        let rank = rank_hint.unwrap_or(0);
        let id = self.mft.add_state(name.to_string(), rank);
        self.state_names.insert(name.to_string(), id);
        self.inferred_only.insert(id, rank_hint.is_none());
        Ok(id)
    }

    fn parse(mut self) -> Result<Mft, MftTextError> {
        let mut first = true;
        while self.tok != Tok::Eof {
            let q = self.rule()?;
            if first {
                self.mft.initial = q;
                first = false;
            }
            while self.tok == Tok::Semi {
                self.advance()?;
            }
        }
        if first {
            return self.err("no rules");
        }
        // States only ever called, never defined: keep default ε-rules
        // (total by construction), nothing to do.
        self.mft.validate().map_err(|e| MftTextError {
            line: 0,
            col: 0,
            msg: e.msg,
        })?;
        Ok(self.mft)
    }

    /// Parse one rule; returns its lhs state.
    fn rule(&mut self) -> Result<StateId, MftTextError> {
        let name = match &self.tok {
            Tok::Name(n) => n.clone(),
            t => return self.err(format!("expected state name, found {t:?}")),
        };
        self.advance()?;
        self.expect(Tok::LPar, "'('")?;
        let pat = self.pattern()?;
        // Parameters y1..ym.
        let mut m = 0usize;
        while self.tok == Tok::Comma {
            self.advance()?;
            match &self.tok {
                Tok::Name(n) if parse_y(n) == Some(m) => {
                    m += 1;
                    self.advance()?;
                }
                t => return self.err(format!("expected y{} in lhs, found {t:?}", m + 1)),
            }
        }
        self.expect(Tok::RPar, "')'")?;
        self.expect(Tok::Arrow, "'->'")?;

        let q = self.state_of(&name, Some(m))?;
        // Seeing an lhs fixes the rank authoritatively.
        if self.inferred_only.get(&q) == Some(&true) {
            if self.mft.params_of(q) != m {
                return self.err(format!(
                    "state {name} defined with {m} parameter(s) but called with {}",
                    self.mft.params_of(q)
                ));
            }
            self.inferred_only.insert(q, false);
        }

        let body = self.forest(m)?;
        match pat {
            Pattern::Sym(label) => {
                let sym = self.mft.alphabet.intern(label);
                self.mft.set_sym_rule(q, sym, body);
            }
            Pattern::Default => self.mft.set_default_rule(q, body),
            Pattern::TextDefault => self.mft.set_text_rule(q, body),
            Pattern::Stay => self.mft.set_stay_rule(q, body),
            Pattern::Eps => self.mft.set_eps_rule(q, body),
        }
        Ok(q)
    }

    fn pattern(&mut self) -> Result<Pattern, MftTextError> {
        let head = match self.tok.clone() {
            Tok::Pct => {
                self.advance()?;
                return Ok(Pattern::Stay);
            }
            Tok::Name(n) if n == "eps" => {
                self.advance()?;
                return Ok(Pattern::Eps);
            }
            Tok::PctT => {
                self.advance()?;
                Pattern::Default
            }
            Tok::PctText => {
                self.advance()?;
                Pattern::TextDefault
            }
            Tok::Name(n) => {
                self.advance()?;
                Pattern::Sym(Label::elem(n))
            }
            Tok::Str(s) => {
                self.advance()?;
                Pattern::Sym(Label::text(s))
            }
            t => return self.err(format!("expected pattern, found {t:?}")),
        };
        // σ(x1) x2
        self.expect(Tok::LPar, "'(' in pattern")?;
        match &self.tok {
            Tok::Name(n) if n == "x1" => self.advance()?,
            t => return self.err(format!("expected x1 in pattern, found {t:?}")),
        }
        self.expect(Tok::RPar, "')' in pattern")?;
        match &self.tok {
            Tok::Name(n) if n == "x2" => self.advance()?,
            t => return self.err(format!("expected x2 in pattern, found {t:?}")),
        }
        Ok(head)
    }

    /// Parse a rhs forest in a rank-`m` context; stops at `)` `,` `;` or a
    /// token that starts a new rule is impossible to detect, so forests end
    /// only at those delimiters.
    fn forest(&mut self, m: usize) -> Result<Rhs, MftTextError> {
        let mut out = Vec::new();
        loop {
            match self.tok.clone() {
                Tok::RPar | Tok::Comma | Tok::Semi | Tok::Eof => return Ok(out),
                Tok::Name(n) if n == "eps" => {
                    self.advance()?;
                }
                Tok::Name(n) => {
                    self.advance()?;
                    if let Some(i) = parse_y(&n) {
                        if i >= m {
                            return self.err(format!("{n} out of range (rank is {m})"));
                        }
                        out.push(RhsNode::Param(i));
                    } else if self.tok == Tok::LPar {
                        self.advance()?;
                        out.push(self.call_or_out(n, m)?);
                    } else {
                        // Leaf output element.
                        let sym = self.mft.alphabet.intern(Label::elem(n));
                        out.push(rhs::out(sym, vec![]));
                    }
                }
                Tok::Str(s) => {
                    self.advance()?;
                    let sym = self.mft.alphabet.intern(Label::text(s));
                    if self.tok == Tok::LPar {
                        self.advance()?;
                        let children = self.forest(m)?;
                        self.expect(Tok::RPar, "')'")?;
                        out.push(rhs::out(sym, children));
                    } else {
                        out.push(rhs::out(sym, vec![]));
                    }
                }
                Tok::PctT => {
                    self.advance()?;
                    self.expect(Tok::LPar, "'(' after %t")?;
                    let children = self.forest(m)?;
                    self.expect(Tok::RPar, "')'")?;
                    out.push(rhs::out_current(children));
                }
                t => return self.err(format!("unexpected {t:?} in rhs")),
            }
        }
    }

    /// After `name(`: a state call if the first token is an x-variable,
    /// otherwise an output element.
    fn call_or_out(&mut self, name: String, m: usize) -> Result<RhsNode, MftTextError> {
        let xvar = match &self.tok {
            Tok::Name(n) if n == "x0" => Some(XVar::X0),
            Tok::Name(n) if n == "x1" => Some(XVar::X1),
            Tok::Name(n) if n == "x2" => Some(XVar::X2),
            _ => None,
        };
        match xvar {
            Some(x) => {
                self.advance()?;
                let mut args = Vec::new();
                while self.tok == Tok::Comma {
                    self.advance()?;
                    args.push(self.forest(m)?);
                }
                self.expect(Tok::RPar, "')' after call")?;
                let q = self.state_of(&name, None)?;
                if self.inferred_only.get(&q) == Some(&true) && self.mft.params_of(q) != args.len()
                {
                    // First call fixed an arity; allow widening only if the
                    // state was never used before (params_of default 0).
                    let never_used = self.mft.params_of(q) == 0
                        && !self
                            .mft
                            .rules
                            .iter()
                            .flat_map(|r| {
                                r.by_sym
                                    .values()
                                    .chain(r.text_default.as_ref())
                                    .chain([&r.default, &r.eps])
                            })
                            .flat_map(|r| crate::mft::rhs_iter(r))
                            .any(|n| matches!(n, RhsNode::Call { state, .. } if *state == q));
                    if never_used {
                        self.mft.states[q.idx()].params = args.len();
                    } else {
                        return self.err(format!(
                            "state {name} called with {} argument(s), expected {}",
                            args.len(),
                            self.mft.params_of(q)
                        ));
                    }
                }
                if self.mft.params_of(q) != args.len() && self.inferred_only.get(&q) != Some(&true)
                {
                    return self.err(format!(
                        "state {name} called with {} argument(s), expected {}",
                        args.len(),
                        self.mft.params_of(q)
                    ));
                }
                if let std::collections::hash_map::Entry::Vacant(e) = self.inferred_only.entry(q) {
                    e.insert(true);
                    self.mft.states[q.idx()].params = args.len();
                }
                Ok(rhs::call(q, x, args))
            }
            None => {
                let children = self.forest(m)?;
                self.expect(Tok::RPar, "')'")?;
                let sym = self.mft.alphabet.intern(Label::elem(name));
                Ok(rhs::out(sym, children))
            }
        }
    }
}

fn parse_y(name: &str) -> Option<usize> {
    let rest = name.strip_prefix('y')?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let n: usize = rest.parse().ok()?;
    if n == 0 {
        return None;
    }
    Some(n - 1)
}

/// Parse an MFT from the textual rule notation.
pub fn parse_mft(src: &str) -> Result<Mft, MftTextError> {
    Parser::new(src)?.parse()
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

/// Render an MFT in the textual rule notation (parsable by [`parse_mft`]).
///
/// The initial state's rules are printed first so that re-parsing preserves
/// the initial state.
pub fn print_mft(m: &Mft) -> String {
    let mut out = String::new();
    let mut order: Vec<StateId> = (0..m.states.len() as u32).map(StateId).collect();
    order.sort_by_key(|&q| (q != m.initial, q.0));
    for q in order {
        let rules = &m.rules[q.idx()];
        let mut syms: Vec<_> = rules.by_sym.keys().copied().collect();
        syms.sort();
        for sym in syms {
            print_rule(
                m,
                q,
                &format!("{}(x1) x2", sym_str(m, sym)),
                &rules.by_sym[&sym],
                &mut out,
            );
        }
        if let Some(r) = &rules.text_default {
            print_rule(m, q, "%text(x1) x2", r, &mut out);
        }
        print_rule(m, q, "%t(x1) x2", &rules.default, &mut out);
        print_rule(m, q, "eps", &rules.eps, &mut out);
    }
    out
}

fn sym_str(m: &Mft, sym: foxq_forest::SymId) -> String {
    let label = m.alphabet.label(sym);
    match label.kind {
        NodeKind::Element => label.name.to_string(),
        NodeKind::Text => format!("{:?}", &*label.name),
    }
}

fn print_rule(m: &Mft, q: StateId, pat: &str, rhs: &Rhs, out: &mut String) {
    let _ = write!(out, "{}({}", m.name_of(q), pat);
    for i in 0..m.params_of(q) {
        let _ = write!(out, ", y{}", i + 1);
    }
    let _ = write!(out, ") -> ");
    print_forest(m, rhs, out);
    out.push_str(";\n");
}

fn print_forest(m: &Mft, f: &Rhs, out: &mut String) {
    if f.is_empty() {
        out.push_str("eps");
        return;
    }
    for (i, n) in f.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        print_node(m, n, out);
    }
}

fn print_node(m: &Mft, n: &RhsNode, out: &mut String) {
    match n {
        RhsNode::Param(i) => {
            let _ = write!(out, "y{}", i + 1);
        }
        RhsNode::Out { label, children } => {
            match label {
                OutLabel::Sym(s) => {
                    let _ = write!(out, "{}", sym_str(m, *s));
                }
                OutLabel::Current => out.push_str("%t"),
            }
            // Text leaves print without parens; everything else with.
            let is_text_leaf = matches!(label, OutLabel::Sym(s)
                if m.alphabet.label(*s).kind == NodeKind::Text)
                && children.is_empty();
            if !is_text_leaf {
                out.push('(');
                if !children.is_empty() {
                    print_forest(m, children, out);
                }
                out.push(')');
            }
        }
        RhsNode::Call { state, input, args } => {
            let x = match input {
                XVar::X0 => "x0",
                XVar::X1 => "x1",
                XVar::X2 => "x2",
            };
            let _ = write!(out, "{}({}", m.name_of(*state), x);
            for a in args {
                out.push_str(", ");
                print_forest(m, a, out);
            }
            out.push(')');
        }
    }
}

/// The full `Mperson` transducer from §2.2 of the paper, in rule notation —
/// selects the text of `name`-children of persons whose `p_id` is
/// `"person0"`. Kept public for examples and cross-module tests.
pub const MPERSON: &str = r#"
        q0(%t(x1) x2) -> out(q1(x0));
        q0(eps) -> out(q1(x0));
        q1(person(x1) x2) -> q2(x1, q4(x1)) q1(x2);
        q1(%t(x1) x2) -> q1(x1) q1(x2);
        q1(eps) -> eps;
        q2(p_id(x1) x2, y1) -> q3(x1, y1, q2(x2, y1));
        q2(%t(x1) x2, y1) -> q2(x2, y1);
        q2(eps, y1) -> eps;
        q3("person0"(x1) x2, y1, y2) -> y1;
        q3(%t(x1) x2, y1, y2) -> q3(x2, y1, y2);
        q3(eps, y1, y2) -> y2;
        q4(name(x1) x2) -> q5(x1) q4(x2);
        q4(%t(x1) x2) -> q4(x2);
        q4(eps) -> eps;
        q5(%text(x1) x2) -> %t() q5(x2);
        q5(%t(x1) x2) -> q5(x2);
        q5(eps) -> eps;
    "#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_mft;
    use foxq_forest::term::{forest_to_term, parse_forest};

    const MPERSON: &str = super::MPERSON;
    const _UNUSED: &str = r#"
        q0(%t(x1) x2) -> out(q1(x0));
        q1(person(x1) x2) -> q2(x1, q4(x1)) q1(x2);
        q1(%t(x1) x2) -> q1(x1) q1(x2);
        q1(eps) -> eps;
        q2(p_id(x1) x2, y1) -> q3(x1, y1, q2(x2, y1));
        q2(%t(x1) x2, y1) -> q2(x2, y1);
        q2(eps, y1) -> eps;
        q3("person0"(x1) x2, y1, y2) -> y1;
        q3(%t(x1) x2, y1, y2) -> q3(x2, y1, y2);
        q3(eps, y1, y2) -> y2;
        q4(name(x1) x2) -> q5(x1) q4(x2);
        q4(%t(x1) x2) -> q4(x2);
        q4(eps) -> eps;
        q5(%text(x1) x2) -> %t() q5(x2);
        q5(%t(x1) x2) -> q5(x2);
        q5(eps) -> eps;
    "#;

    fn state_by_name(m: &Mft, name: &str) -> StateId {
        (0..m.state_count() as u32)
            .map(StateId)
            .find(|&q| m.name_of(q) == name)
            .unwrap_or_else(|| panic!("no state {name}"))
    }

    #[test]
    fn parses_mperson() {
        let m = parse_mft(MPERSON).unwrap();
        assert_eq!(m.state_count(), 6);
        assert_eq!(m.params_of(state_by_name(&m, "q3")), 2); // q3 has y1,y2
        assert_eq!(m.params_of(state_by_name(&m, "q2")), 1);
        assert_eq!(m.params_of(state_by_name(&m, "q4")), 0);
        assert_eq!(m.initial, state_by_name(&m, "q0"));
        m.validate().unwrap();
    }

    #[test]
    fn mperson_runs_like_the_paper() {
        let m = parse_mft(MPERSON).unwrap();
        // <person><p_id><a/>person0</p_id><name>Jim</name><c/><name>Li</name></person>
        let doc =
            parse_forest(r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#).unwrap();
        let out = run_mft(&m, &doc).unwrap();
        assert_eq!(forest_to_term(&out), r#"out("Jim" "Li")"#);
    }

    #[test]
    fn mperson_filter_false_selects_else_branch() {
        let m = parse_mft(MPERSON).unwrap();
        // First p_id has "perso7" (filter false there), second has "person0".
        let doc =
            parse_forest(r#"person(p_id(a() "perso7") name("Jim") c() p_id("person0"))"#).unwrap();
        let out = run_mft(&m, &doc).unwrap();
        assert_eq!(forest_to_term(&out), r#"out("Jim")"#);
    }

    #[test]
    fn mperson_no_match_outputs_empty() {
        let m = parse_mft(MPERSON).unwrap();
        let doc = parse_forest(r#"person(p_id("nobody") name("Jim"))"#).unwrap();
        let out = run_mft(&m, &doc).unwrap();
        assert_eq!(forest_to_term(&out), "out()");
    }

    #[test]
    fn print_parse_roundtrip() {
        let m = parse_mft(MPERSON).unwrap();
        let printed = print_mft(&m);
        let m2 = parse_mft(&printed).unwrap();
        // Equivalence on a sample input (structural equality would require
        // symbol-id alignment; behavioural check is the real invariant).
        let doc = parse_forest(
            r#"person(p_id("person0") name("A") name("B")) person(p_id("x") name("C"))"#,
        )
        .unwrap();
        assert_eq!(run_mft(&m, &doc).unwrap(), run_mft(&m2, &doc).unwrap());
        assert_eq!(m.state_count(), m2.state_count());
    }

    #[test]
    fn stay_shorthand_sets_both_rules() {
        let m = parse_mft("q(%) -> a(); ").unwrap();
        let out = run_mft(&m, &[]).unwrap();
        assert_eq!(forest_to_term(&out), "a()");
        let f = parse_forest("b").unwrap();
        assert_eq!(forest_to_term(&run_mft(&m, &f).unwrap()), "a()");
    }

    #[test]
    fn error_reports_position() {
        let e = parse_mft("q(%t(x1) x2) -> (").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.col > 10);
    }

    #[test]
    fn rejects_rank_mismatch() {
        // y1 out of range in a rank-1 state:
        assert!(parse_mft("q(%t(x1) x2) -> y1;").is_err());
        // p called with 1 arg then defined with 0 params:
        let src = "q(%t(x1) x2) -> p(x1, a()); p(%t(x1) x2) -> eps;";
        assert!(parse_mft(src).is_err());
    }

    #[test]
    fn string_constants_are_text_symbols() {
        let m = parse_mft(r#"q("hit"(x1) x2) -> yes(); q(%t(x1) x2) -> q(x2); q(eps) -> eps;"#)
            .unwrap();
        let f = parse_forest(r#"e() "hit""#).unwrap();
        assert_eq!(forest_to_term(&run_mft(&m, &f).unwrap()), "yes()");
        // An *element* named "hit" must not match the text symbol.
        let f2 = parse_forest("hit()").unwrap();
        assert_eq!(forest_to_term(&run_mft(&m, &f2).unwrap()), "");
    }
}
