//! Streaming MFT execution — the engine of §1 contribution (1).
//!
//! The paper streams MFTs with Nakano & Mu's pushdown machine, obtained by
//! composing the transducer with an XML parsing transducer. This module
//! implements the same computational model directly:
//!
//! * The not-yet-seen part of the input is a set of **locations**: one for
//!   the forest that starts at the current parse position, one per open
//!   element for the forest after its closing tag. An `open` event defines
//!   the current location as `label(child)·sib` (two fresh locations); a
//!   `close`/end-of-input event defines it as ε.
//! * The output under construction is a **reference-counted expression
//!   graph**: ground nodes, forests, and *pending* state calls. A pending
//!   call subscribes to the location it reads; when the location is defined,
//!   the call is rewritten in place to the instantiated right-hand side of
//!   the applicable rule. Stay moves (`x0`) expand immediately within the
//!   same event (with a fuel bound, since stay loops do not terminate).
//! * Parameters are **shared, not copied**: a parameter used k times costs
//!   k−1 reference-count increments. Dropping a branch (e.g. the losing arm
//!   of an XPath predicate) releases its subgraph. This mirrors the sharing
//!   the OCaml engine gets from immutable values plus garbage collection.
//! * After every event the **emitter** walks the leftmost frontier of the
//!   graph and pushes everything ground to the [`XmlSink`] — destructively
//!   where the engine holds the only reference, by cursor where the subgraph
//!   is shared (it will be emitted again for another copy).
//!
//! Peak live graph size is the engine's memory measure, reported in
//! [`StreamStats`] — it is exactly the "buffer" the paper's evaluation
//! plots: constant for optimized streamable queries, linear in the input for
//! the unoptimized translation (which holds `qcopy(x0)` in a parameter).

use crate::mft::{Mft, OutLabel, Rhs, RhsNode, StateId, XVar};
use foxq_forest::{Label, Tree};
use foxq_xml::{EventSource, XmlError, XmlEvent, XmlReader, XmlSink};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// The output-event budget [`PreparedQuery`](../../foxq_service) serving and
/// the `foxq` CLI apply by default: generous enough for any legitimate run
/// (10⁹ events is hundreds of gigabytes of XML), tight enough that a
/// doubling-transducer bomb over untrusted input fails fast instead of
/// filling the disk.
pub const DEFAULT_MAX_OUTPUT_EVENTS: u64 = 1_000_000_000;

/// Resource limits for a streaming run.
#[derive(Debug, Clone, Copy)]
pub struct StreamLimits {
    /// Maximum rule expansions per input event (guards stay-move loops).
    pub max_expansions_per_event: u64,
    /// Maximum output events (open + close) pushed to the sink over the
    /// whole run (guards output bombs — a transducer can emit output
    /// exponential in its input). `u64::MAX` (the default) disables the
    /// check; serving layers should pass [`DEFAULT_MAX_OUTPUT_EVENTS`].
    pub max_output_events: u64,
}

impl Default for StreamLimits {
    fn default() -> Self {
        StreamLimits {
            max_expansions_per_event: 10_000_000,
            max_output_events: u64::MAX,
        }
    }
}

impl StreamLimits {
    /// Default limits with the standard serving output budget.
    pub fn serving() -> Self {
        StreamLimits {
            max_output_events: DEFAULT_MAX_OUTPUT_EVENTS,
            ..StreamLimits::default()
        }
    }
}

/// Failure of a streaming run.
#[derive(Debug)]
pub enum StreamError {
    /// The input XML was malformed.
    Xml(XmlError),
    /// Expansion fuel exhausted — almost certainly a stay-move loop.
    Fuel { state: String },
    /// The output-event budget was exhausted.
    OutputLimit { max_output_events: u64 },
    /// An [`EmitSink`](crate::emit::EmitSink) failed to release an
    /// irrevocable prefix downstream (e.g. the client hung up mid-stream).
    /// Aborts the run — there is no point transducing input nobody will
    /// read.
    Emit(std::io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Xml(e) => write!(f, "{e}"),
            StreamError::Fuel { state } => {
                write!(
                    f,
                    "expansion fuel exhausted in state {state} (stay-move loop?)"
                )
            }
            StreamError::OutputLimit { max_output_events } => {
                write!(f, "output limit of {max_output_events} events exceeded")
            }
            StreamError::Emit(e) => write!(f, "emit sink failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<XmlError> for StreamError {
    fn from(e: XmlError) -> Self {
        StreamError::Xml(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Emit(e)
    }
}

/// Statistics of one streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Input events processed (open + close pairs + eof).
    pub events: u64,
    /// Opening events consumed (elements and text nodes).
    pub open_events: u64,
    /// Closing events consumed.
    pub close_events: u64,
    /// Rule expansions performed.
    pub expansions: u64,
    /// Peak number of live expression nodes (the buffer measure).
    pub peak_live_nodes: usize,
    /// Peak approximate bytes of live expression nodes.
    pub peak_live_bytes: usize,
    /// Peak number of simultaneously *pending* state calls — output
    /// positions whose value is still unresolved. This is the part of
    /// the buffer that blocks earliest emission: everything to the left
    /// of the first pending call could in principle be flushed. The
    /// streamability planner (ROADMAP item 4) predicts this quantity.
    pub peak_pending_calls: usize,
    /// Maximum element nesting depth seen.
    pub max_depth: usize,
    /// Output events pushed to the sink.
    pub output_events: u64,
    /// Input events an upstream label prefilter withheld on this engine's
    /// behalf (they were never fed, so they appear in no other counter).
    /// Always 0 for solo runs; set by `foxq_service::MultiQueryEngine`.
    pub prefiltered_events: u64,
    /// Tape bytes an upstream seekable event source (`foxq_store`) jumped
    /// over instead of scanning, on this engine's behalf. The events inside
    /// those bytes are counted in [`StreamStats::prefiltered_events`];
    /// this records how much input never even had to be decoded. Always 0
    /// when the input is parsed XML.
    pub seek_skipped_bytes: u64,
    /// Tape bytes the label skip index proved irrelevant, so the merged
    /// posting-list cursor never visited them at all (no open frame was
    /// decoded, unlike [`StreamStats::seek_skipped_bytes`] where each
    /// skip starts from a decoded open). The events inside are counted in
    /// [`StreamStats::prefiltered_events`]. Always 0 off the index path.
    pub index_skipped_bytes: u64,
    /// Flushes that emitted at least one output event — i.e. input events
    /// after which the irrevocable output prefix actually grew. An
    /// [`EmitSink`](crate::emit::EmitSink) sees at most this many non-empty
    /// emission boundaries.
    pub emit_flushes: u64,
    /// 1-based index of the input event whose flush produced the *first*
    /// output event (0 if the run produced no output). This is the
    /// events-to-first-emit measure: how much input had to be consumed
    /// before any prefix became irrevocable.
    pub first_emit_events: u64,
    /// Output events that were already emitted when end-of-input arrived —
    /// i.e. output that streamed out *before* the document ended. The
    /// remainder (`output_events - streamed_output_events`) only became
    /// irrevocable at eof. `streamed / output` is the emittable-prefix
    /// fraction.
    pub streamed_output_events: u64,
}

impl StreamStats {
    /// Fraction of output events that were emitted before end-of-input
    /// (the emittable-prefix fraction); 0.0 for runs with no output.
    pub fn streamed_fraction(&self) -> f64 {
        if self.output_events == 0 {
            0.0
        } else {
            self.streamed_output_events as f64 / self.output_events as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Observer
// ---------------------------------------------------------------------------

/// Buffer occupancy at one input-event boundary, handed to
/// [`StreamObserver::on_event`] after each `open`/`close`/eof is fully
/// processed (expansion + flush done).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSample {
    /// 1-based index of the input event just processed.
    pub input_event_index: u64,
    /// Live expression nodes right now.
    pub live_nodes: usize,
    /// Approximate bytes of live expression nodes right now.
    pub live_bytes: usize,
    /// Unresolved pending state calls right now.
    pub pending_calls: usize,
    /// Run-global high-water mark of `live_nodes`, including transient
    /// mid-event peaks the end-of-event values never show.
    pub peak_live_nodes: usize,
    /// Run-global high-water mark of `live_bytes` (ditto).
    pub peak_live_bytes: usize,
    /// Run-global high-water mark of `pending_calls` (ditto).
    pub peak_pending_calls: usize,
}

/// Hook for per-run engine profiling. The engine is generic over the
/// observer and the no-op impl for `()` has `ENABLED = false`, so every
/// hook site monomorphizes to nothing in the default configuration —
/// observer-off runs pay zero cost (guarded by a stats-parity test and
/// the release A/B throughput guard).
pub trait StreamObserver {
    /// Whether hooks fire at all; `false` compiles them out.
    const ENABLED: bool;

    /// One rule expansion finished: `state` was rewritten in place, and
    /// the arena's live-node/byte/pending counts moved by the deltas
    /// (instantiation minus dropped-argument releases).
    fn on_expansion(&mut self, state: StateId, d_nodes: i64, d_bytes: i64, d_pending: i64);

    /// One output event (open or close) was pushed to the sink.
    fn on_output_event(&mut self);

    /// One input event was fully processed; `sample` is the buffer
    /// occupancy at the boundary.
    fn on_event(&mut self, sample: BufferSample);
}

/// The default, disabled observer.
impl StreamObserver for () {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_expansion(&mut self, _: StateId, _: i64, _: i64, _: i64) {}

    #[inline(always)]
    fn on_output_event(&mut self) {}

    #[inline(always)]
    fn on_event(&mut self, _: BufferSample) {}
}

// ---------------------------------------------------------------------------
// Expression arena
// ---------------------------------------------------------------------------

/// Generational index into the arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ExprId {
    idx: u32,
    gen: u32,
}

enum Expr {
    /// A forest of sub-expressions (also the result of an expansion).
    Forest(VecDeque<ExprId>),
    /// A ground output node (element or text).
    Node {
        label: Label,
        children: VecDeque<ExprId>,
    },
    /// A state call waiting for its input location to be defined.
    Pending { state: StateId, args: Vec<ExprId> },
}

struct Slot {
    gen: u32,
    rc: u32,
    expr: Option<Expr>,
    bytes: usize,
}

#[derive(Default)]
struct Arena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    live_bytes: usize,
    peak_live: usize,
    peak_bytes: usize,
    pending: usize,
    peak_pending: usize,
}

impl Arena {
    fn alloc(&mut self, expr: Expr) -> ExprId {
        let bytes = approx_bytes(&expr);
        let is_pending = matches!(expr, Expr::Pending { .. });
        let idx = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                slot.rc = 1;
                slot.expr = Some(expr);
                slot.bytes = bytes;
                i
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    rc: 1,
                    expr: Some(expr),
                    bytes,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        self.live_bytes += bytes;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        if self.live_bytes > self.peak_bytes {
            self.peak_bytes = self.live_bytes;
        }
        if is_pending {
            self.pending += 1;
            if self.pending > self.peak_pending {
                self.peak_pending = self.pending;
            }
        }
        ExprId {
            idx,
            gen: self.slots[idx as usize].gen,
        }
    }

    fn alive(&self, id: ExprId) -> bool {
        let slot = &self.slots[id.idx as usize];
        slot.gen == id.gen && slot.expr.is_some()
    }

    fn get(&self, id: ExprId) -> &Expr {
        debug_assert!(self.alive(id));
        self.slots[id.idx as usize].expr.as_ref().unwrap()
    }

    fn get_mut(&mut self, id: ExprId) -> &mut Expr {
        debug_assert!(self.alive(id));
        self.slots[id.idx as usize].expr.as_mut().unwrap()
    }

    fn rc(&self, id: ExprId) -> u32 {
        self.slots[id.idx as usize].rc
    }

    fn inc_rc(&mut self, id: ExprId) {
        debug_assert!(self.alive(id));
        self.slots[id.idx as usize].rc += 1;
    }

    /// Decrement a reference count, freeing recursively at zero.
    fn release(&mut self, id: ExprId) {
        let mut stack = vec![id];
        while let Some(id) = stack.pop() {
            let slot = &mut self.slots[id.idx as usize];
            debug_assert!(
                slot.gen == id.gen && slot.expr.is_some(),
                "release of dead node"
            );
            slot.rc -= 1;
            if slot.rc > 0 {
                continue;
            }
            let expr = slot.expr.take().unwrap();
            slot.gen = slot.gen.wrapping_add(1);
            self.live -= 1;
            self.live_bytes -= slot.bytes;
            self.free.push(id.idx);
            match expr {
                Expr::Forest(children) | Expr::Node { children, .. } => {
                    stack.extend(children);
                }
                Expr::Pending { args, .. } => {
                    self.pending -= 1;
                    stack.extend(args);
                }
            }
        }
    }

    /// Replace a pending call's expression in place (the expansion
    /// rewrite), keeping the pending count and byte estimate honest.
    fn resolve(&mut self, id: ExprId, expr: Expr) {
        debug_assert!(matches!(self.get(id), Expr::Pending { .. }));
        if !matches!(expr, Expr::Pending { .. }) {
            self.pending -= 1;
        }
        *self.get_mut(id) = expr;
        self.rebytes(id);
    }

    /// Refresh the slot's byte estimate after an in-place rewrite.
    fn rebytes(&mut self, id: ExprId) {
        let slot = &mut self.slots[id.idx as usize];
        let new = slot.expr.as_ref().map(approx_bytes).unwrap_or(0);
        self.live_bytes = self.live_bytes - slot.bytes + new;
        slot.bytes = new;
        if self.live_bytes > self.peak_bytes {
            self.peak_bytes = self.live_bytes;
        }
    }
}

fn approx_bytes(e: &Expr) -> usize {
    const BASE: usize = 48;
    match e {
        Expr::Forest(c) => BASE + 8 * c.len(),
        Expr::Node { label, children } => BASE + label.name.len() + 8 * children.len(),
        Expr::Pending { args, .. } => BASE + 8 * args.len(),
    }
}

// ---------------------------------------------------------------------------
// Locations
// ---------------------------------------------------------------------------

/// A location: the subscriber list of pending calls waiting on it.
type LocRef = Rc<RefCell<Vec<ExprId>>>;

fn new_loc() -> LocRef {
    Rc::new(RefCell::new(Vec::new()))
}

/// The definition applied to a location by one input event.
enum Ctx {
    Open {
        label: Label,
        child: LocRef,
        sib: LocRef,
    },
    Eps,
}

// ---------------------------------------------------------------------------
// Emitter frames
// ---------------------------------------------------------------------------

struct Frame {
    node: ExprId,
    /// Cursor for shared (non-destructive) traversal.
    idx: usize,
    /// Whether this frame holds a reference to `node` (released on pop).
    holds_ref: bool,
    /// For `Node` frames: has the start tag been emitted?
    opened: bool,
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Incremental streaming executor. Feed events with [`Engine::open`] /
/// [`Engine::close`], then call [`Engine::finish`].
///
/// Generic over a [`StreamObserver`]; the default `()` observer
/// compiles every hook out.
pub struct Engine<'m, S, O: StreamObserver = ()> {
    mft: &'m Mft,
    sink: S,
    arena: Arena,
    /// The location beginning at the current parse position.
    current: LocRef,
    /// Locations for the forests after each open element's closing tag.
    stack: Vec<LocRef>,
    frames: Vec<Frame>,
    limits: StreamLimits,
    stats: StreamStats,
    obs: O,
    finished: bool,
}

impl<'m, S: XmlSink> Engine<'m, S> {
    pub fn new(mft: &'m Mft, sink: S) -> Self {
        Self::with_limits(mft, sink, StreamLimits::default())
    }

    pub fn with_limits(mft: &'m Mft, sink: S, limits: StreamLimits) -> Self {
        Engine::with_observer(mft, sink, limits, ())
    }
}

impl<'m, S: XmlSink, O: StreamObserver> Engine<'m, S, O> {
    /// An engine whose hook sites report to `obs`.
    pub fn with_observer(mft: &'m Mft, sink: S, limits: StreamLimits, obs: O) -> Self {
        let mut arena = Arena::default();
        let current = new_loc();
        let root = arena.alloc(Expr::Pending {
            state: mft.initial,
            args: Vec::new(),
        });
        current.borrow_mut().push(root);
        let frames = vec![Frame {
            node: root,
            idx: 0,
            holds_ref: true,
            opened: false,
        }];
        Engine {
            mft,
            sink,
            arena,
            current,
            stack: Vec::new(),
            frames,
            limits,
            stats: StreamStats::default(),
            obs,
            finished: false,
        }
    }

    /// Feed an opening event (element or text node).
    pub fn open(&mut self, label: &Label) -> Result<(), StreamError> {
        debug_assert!(!self.finished);
        self.stats.events += 1;
        self.stats.open_events += 1;
        let child = new_loc();
        let sib = new_loc();
        let ctx = Ctx::Open {
            label: label.clone(),
            child: child.clone(),
            sib: sib.clone(),
        };
        let subs = std::mem::take(&mut *self.current.borrow_mut());
        self.expand_all(subs, &ctx)?;
        self.stack.push(sib);
        self.stats.max_depth = self.stats.max_depth.max(self.stack.len());
        self.current = child;
        self.flush()?;
        self.sync_peaks();
        self.note_event();
        Ok(())
    }

    fn sync_peaks(&mut self) {
        self.stats.peak_live_nodes = self.arena.peak_live;
        self.stats.peak_live_bytes = self.arena.peak_bytes;
        self.stats.peak_pending_calls = self.arena.peak_pending;
    }

    /// Report the post-event buffer occupancy to the observer.
    #[inline]
    fn note_event(&mut self) {
        if O::ENABLED {
            self.obs.on_event(BufferSample {
                input_event_index: self.stats.events,
                live_nodes: self.arena.live,
                live_bytes: self.arena.live_bytes,
                pending_calls: self.arena.pending,
                peak_live_nodes: self.arena.peak_live,
                peak_live_bytes: self.arena.peak_bytes,
                peak_pending_calls: self.arena.peak_pending,
            });
        }
    }

    /// Feed the closing event of the most recently opened node.
    pub fn close(&mut self) -> Result<(), StreamError> {
        debug_assert!(!self.finished);
        self.stats.events += 1;
        self.stats.close_events += 1;
        let subs = std::mem::take(&mut *self.current.borrow_mut());
        self.expand_all(subs, &Ctx::Eps)?;
        self.current = self.stack.pop().expect("close without matching open");
        self.flush()?;
        self.sync_peaks();
        self.note_event();
        Ok(())
    }

    /// Signal end of input and retrieve the sink and run statistics.
    pub fn finish(self) -> Result<(S, StreamStats), StreamError> {
        self.finish_observed().map(|(sink, stats, _)| (sink, stats))
    }

    /// [`Engine::finish`], also handing back the observer.
    pub fn finish_observed(mut self) -> Result<(S, StreamStats, O), StreamError> {
        debug_assert!(self.stack.is_empty(), "unclosed elements at finish");
        // Everything emitted so far streamed out before the document
        // ended; whatever the eof tick below adds was end-buffered.
        self.stats.streamed_output_events = self.stats.output_events;
        self.stats.events += 1;
        let subs = std::mem::take(&mut *self.current.borrow_mut());
        self.expand_all(subs, &Ctx::Eps)?;
        self.flush()?;
        self.sync_peaks();
        self.note_event();
        debug_assert!(
            self.frames.is_empty(),
            "output frontier not ground after end of input"
        );
        self.finished = true;
        Ok((self.sink, self.stats, self.obs))
    }

    /// Access the sink mid-run (e.g. to inspect counters).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the sink mid-run — used by emission drivers to
    /// hand irrevocable prefixes downstream between input events.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Statistics so far.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Current number of live expression nodes (the buffer size).
    pub fn live_nodes(&self) -> usize {
        self.arena.live
    }

    // ---- expansion ----------------------------------------------------

    fn expand_all(&mut self, subs: Vec<ExprId>, ctx: &Ctx) -> Result<(), StreamError> {
        let mut work: VecDeque<ExprId> = subs.into();
        let mut fuel = self.limits.max_expansions_per_event;
        while let Some(id) = work.pop_front() {
            if !self.arena.alive(id) {
                continue; // dropped branch
            }
            if fuel == 0 {
                let state = match self.arena.get(id) {
                    Expr::Pending { state, .. } => self.mft.name_of(*state).to_string(),
                    _ => "?".to_string(),
                };
                return Err(StreamError::Fuel { state });
            }
            fuel -= 1;
            self.expand_one(id, ctx, &mut work);
        }
        Ok(())
    }

    /// Rewrite one pending call in place using the rule selected by `ctx`.
    fn expand_one(&mut self, id: ExprId, ctx: &Ctx, work: &mut VecDeque<ExprId>) {
        self.stats.expansions += 1;
        let before = if O::ENABLED {
            (self.arena.live, self.arena.live_bytes, self.arena.pending)
        } else {
            (0, 0, 0)
        };
        let (state, args) = match self.arena.get_mut(id) {
            Expr::Pending { state, args } => (*state, std::mem::take(args)),
            _ => unreachable!("expand target must be pending"),
        };
        let rules = &self.mft.rules[state.idx()];
        let rhs: &Rhs = match ctx {
            Ctx::Eps => &rules.eps,
            Ctx::Open { label, .. } => match self.mft.alphabet.lookup(label) {
                Some(sym) if rules.by_sym.contains_key(&sym) => &rules.by_sym[&sym],
                _ if label.is_text() && rules.text_default.is_some() => {
                    rules.text_default.as_ref().unwrap()
                }
                _ => &rules.default,
            },
        };
        let mut used = vec![false; args.len()];
        let children = self.instantiate(rhs, ctx, &args, &mut used, work);
        // Arguments the rule dropped: release their subgraphs.
        for (arg, used) in args.iter().zip(&used) {
            if !used {
                self.arena.release(*arg);
            }
        }
        self.arena.resolve(id, Expr::Forest(children));
        if O::ENABLED {
            self.obs.on_expansion(
                state,
                self.arena.live as i64 - before.0 as i64,
                self.arena.live_bytes as i64 - before.1 as i64,
                self.arena.pending as i64 - before.2 as i64,
            );
        }
    }

    /// Instantiate a rhs forest: allocate output nodes, share parameters,
    /// create pending calls (subscribing or scheduling them).
    fn instantiate(
        &mut self,
        rhs: &Rhs,
        ctx: &Ctx,
        args: &[ExprId],
        used: &mut [bool],
        work: &mut VecDeque<ExprId>,
    ) -> VecDeque<ExprId> {
        let mut out = VecDeque::with_capacity(rhs.len());
        for node in rhs {
            match node {
                RhsNode::Param(i) => {
                    let arg = args[*i];
                    if used[*i] {
                        self.arena.inc_rc(arg);
                    } else {
                        used[*i] = true;
                    }
                    out.push_back(arg);
                }
                RhsNode::Out { label, children } => {
                    let label = match label {
                        OutLabel::Sym(s) => self.mft.alphabet.label(*s).clone(),
                        OutLabel::Current => match ctx {
                            Ctx::Open { label, .. } => label.clone(),
                            Ctx::Eps => unreachable!("%t in ε context (validated)"),
                        },
                    };
                    let kids = self.instantiate(children, ctx, args, used, work);
                    out.push_back(self.arena.alloc(Expr::Node {
                        label,
                        children: kids,
                    }));
                }
                RhsNode::Call {
                    state,
                    input,
                    args: cargs,
                } => {
                    let mut new_args = Vec::with_capacity(cargs.len());
                    for a in cargs {
                        let f = self.instantiate(a, ctx, args, used, work);
                        new_args.push(self.arena.alloc(Expr::Forest(f)));
                    }
                    let pid = self.arena.alloc(Expr::Pending {
                        state: *state,
                        args: new_args,
                    });
                    match (input, ctx) {
                        (XVar::X0, _) => work.push_back(pid), // stay move: same event
                        (XVar::X1, Ctx::Open { child, .. }) => {
                            child.borrow_mut().push(pid);
                        }
                        (XVar::X2, Ctx::Open { sib, .. }) => {
                            sib.borrow_mut().push(pid);
                        }
                        // ε-rules may only use x0 (validated), so x1/x2 in an
                        // Eps context cannot occur.
                        (_, Ctx::Eps) => unreachable!("x1/x2 in ε context (validated)"),
                    }
                    out.push_back(pid);
                }
            }
        }
        out
    }

    // ---- emission -------------------------------------------------------

    /// Record one output event against the budget.
    fn count_output_event(&mut self) -> Result<(), StreamError> {
        if O::ENABLED {
            self.obs.on_output_event();
        }
        if self.stats.output_events == 0 {
            self.stats.first_emit_events = self.stats.events;
        }
        self.stats.output_events += 1;
        if self.stats.output_events > self.limits.max_output_events {
            return Err(StreamError::OutputLimit {
                max_output_events: self.limits.max_output_events,
            });
        }
        Ok(())
    }

    /// Emit everything ground on the leftmost frontier, counting the
    /// flush in [`StreamStats::emit_flushes`] when it produced output.
    fn flush(&mut self) -> Result<(), StreamError> {
        let before = self.stats.output_events;
        let r = self.flush_frontier();
        if self.stats.output_events > before {
            self.stats.emit_flushes += 1;
        }
        r
    }

    /// Walk the leftmost output frontier, pushing every ground event to
    /// the sink and stalling at the first pending state call. Flushed
    /// nodes whose reference moved into the frame (`holds_ref`, rc == 1)
    /// are released from the arena on the spot, so live memory tracks
    /// the pending frontier rather than the emitted output.
    fn flush_frontier(&mut self) -> Result<(), StreamError> {
        while let Some(top) = self.frames.last_mut() {
            let node = top.node;
            let destructive = top.holds_ref && self.arena.rc(node) == 1;
            // What to do depends on the node's current kind.
            enum Step {
                Stall,
                Descend(ExprId),
                PopForest,
                OpenNode(Label),
                PopNode(Label),
            }
            let step = match self.arena.get_mut(node) {
                Expr::Pending { .. } => Step::Stall,
                Expr::Forest(children) => {
                    if destructive {
                        match children.pop_front() {
                            Some(c) => Step::Descend(c),
                            None => Step::PopForest,
                        }
                    } else {
                        match children.get(top.idx) {
                            Some(&c) => {
                                top.idx += 1;
                                Step::Descend(c)
                            }
                            None => Step::PopForest,
                        }
                    }
                }
                Expr::Node { label, children } => {
                    if !top.opened {
                        top.opened = true;
                        Step::OpenNode(label.clone())
                    } else if destructive {
                        match children.pop_front() {
                            Some(c) => Step::Descend(c),
                            None => Step::PopNode(label.clone()),
                        }
                    } else {
                        match children.get(top.idx) {
                            Some(&c) => {
                                top.idx += 1;
                                Step::Descend(c)
                            }
                            None => Step::PopNode(label.clone()),
                        }
                    }
                }
            };
            match step {
                Step::Stall => return Ok(()),
                Step::Descend(c) => {
                    // Tail-call elimination: sibling continuations expand
                    // *nested* inside the previous forest, so without this a
                    // frame per sibling would accumulate. If a destructive
                    // forest just yielded its last child, retire it now.
                    if destructive
                        && matches!(self.arena.get(node), Expr::Forest(ch) if ch.is_empty())
                    {
                        let f = self.frames.pop().unwrap();
                        self.arena.release(f.node);
                    }
                    // In destructive mode the parent's reference moved into
                    // this frame; in shared mode the parent keeps it.
                    self.frames.push(Frame {
                        node: c,
                        idx: 0,
                        holds_ref: destructive,
                        opened: false,
                    });
                }
                Step::PopForest => {
                    let f = self.frames.pop().unwrap();
                    if f.holds_ref {
                        self.arena.release(f.node);
                    }
                }
                Step::OpenNode(label) => {
                    self.count_output_event()?;
                    self.sink.open(&label);
                }
                Step::PopNode(label) => {
                    self.count_output_event()?;
                    self.sink.close(&label);
                    let f = self.frames.pop().unwrap();
                    if f.holds_ref {
                        self.arena.release(f.node);
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Run an MFT over any [`EventSource`] (an [`XmlReader`], a
/// `foxq_store::TapeReader`, …), pushing output into `sink`.
pub fn run_streaming<E: EventSource, S: XmlSink>(
    mft: &Mft,
    events: E,
    sink: S,
) -> Result<(S, StreamStats), StreamError> {
    run_streaming_with_limits(mft, events, sink, StreamLimits::default())
}

/// [`run_streaming`] under explicit resource limits.
pub fn run_streaming_with_limits<E: EventSource, S: XmlSink>(
    mft: &Mft,
    events: E,
    sink: S,
    limits: StreamLimits,
) -> Result<(S, StreamStats), StreamError> {
    run_streaming_with_observer(mft, events, sink, limits, ())
        .map(|(sink, stats, ())| (sink, stats))
}

/// [`run_streaming_with_limits`] with a live [`StreamObserver`] (e.g. a
/// `StreamProfiler`), handed back alongside the sink and stats.
pub fn run_streaming_with_observer<E: EventSource, S: XmlSink, O: StreamObserver>(
    mft: &Mft,
    mut events: E,
    sink: S,
    limits: StreamLimits,
    obs: O,
) -> Result<(S, StreamStats, O), StreamError> {
    let mut engine = Engine::with_observer(mft, sink, limits, obs);
    loop {
        match events.next_event()? {
            XmlEvent::Open(label) => engine.open(&label)?,
            XmlEvent::Close(_) => engine.close()?,
            XmlEvent::Eof => return engine.finish_observed(),
        }
    }
}

/// [`run_streaming_with_limits`] over an [`EmitSink`](crate::emit::EmitSink):
/// after every delivered input event the sink's `emit` boundary fires, so
/// whatever the flush just made irrevocable is released downstream before
/// the next event is consumed. A final `emit` after end-of-input releases
/// the end-buffered remainder. The flushed prefix has already been freed
/// from the expression arena by that point, so live memory tracks the
/// pending frontier, not the output.
pub fn run_streaming_emit<E: EventSource, S: crate::emit::EmitSink>(
    mft: &Mft,
    events: E,
    sink: S,
    limits: StreamLimits,
) -> Result<(S, StreamStats), StreamError> {
    run_streaming_emit_observed(mft, events, sink, limits, ())
        .map(|(sink, stats, ())| (sink, stats))
}

/// [`run_streaming_emit`] with a live [`StreamObserver`].
pub fn run_streaming_emit_observed<E: EventSource, S: crate::emit::EmitSink, O: StreamObserver>(
    mft: &Mft,
    mut events: E,
    sink: S,
    limits: StreamLimits,
    obs: O,
) -> Result<(S, StreamStats, O), StreamError> {
    let mut engine = Engine::with_observer(mft, sink, limits, obs);
    loop {
        match events.next_event()? {
            XmlEvent::Open(label) => engine.open(&label)?,
            XmlEvent::Close(_) => engine.close()?,
            XmlEvent::Eof => {
                let (mut sink, stats, obs) = engine.finish_observed()?;
                sink.emit()?;
                return Ok((sink, stats, obs));
            }
        }
        engine.sink_mut().emit()?;
    }
}

/// Drive the engine from an in-memory forest (no XML parsing involved) —
/// used by tests and benchmarks that want to isolate transducer cost.
pub fn run_streaming_on_forest<S: XmlSink>(
    mft: &Mft,
    forest: &[Tree],
    sink: S,
) -> Result<(S, StreamStats), StreamError> {
    let mut engine = Engine::new(mft, sink);
    fn feed<S: XmlSink>(engine: &mut Engine<'_, S>, t: &Tree) -> Result<(), StreamError> {
        engine.open(&t.label)?;
        for c in &t.children {
            feed(engine, c)?;
        }
        engine.close()
    }
    for t in forest {
        feed(&mut engine, t)?;
    }
    engine.finish()
}

/// Output and statistics of [`run_streaming_to_string`].
#[derive(Debug)]
pub struct StreamRunOutput {
    /// Serialized XML output.
    pub output: String,
    pub stats: StreamStats,
}

/// Convenience driver: parse `input` as XML, run `mft`, serialize the output.
pub fn run_streaming_to_string(mft: &Mft, input: &[u8]) -> Result<StreamRunOutput, StreamError> {
    run_streaming_to_string_with_limits(mft, input, StreamLimits::default())
}

/// [`run_streaming_to_string`] under explicit resource limits.
pub fn run_streaming_to_string_with_limits(
    mft: &Mft,
    input: &[u8],
    limits: StreamLimits,
) -> Result<StreamRunOutput, StreamError> {
    let reader = XmlReader::new(input);
    let sink = foxq_xml::WriterSink::new(Vec::new());
    let (sink, stats) = run_streaming_with_limits(mft, reader, sink, limits)?;
    let buf = sink.finish().expect("writing to Vec cannot fail");
    Ok(StreamRunOutput {
        output: String::from_utf8(buf).expect("output is UTF-8"),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_mft;
    use crate::opt::optimize;
    use crate::text::parse_mft;
    use crate::translate::translate;
    use foxq_forest::term::parse_forest;
    use foxq_xml::{forest_to_xml_string, ForestSink};
    use foxq_xquery::parse_query;

    /// Streaming output must equal the in-memory interpreter's output.
    fn check_stream(m: &Mft, doc: &str) -> StreamStats {
        let f = parse_forest(doc).unwrap();
        let expected = run_mft(m, &f).unwrap();
        let (sink, stats) = run_streaming_on_forest(m, &f, ForestSink::new()).unwrap();
        let got = sink.into_forest();
        assert_eq!(
            forest_to_xml_string(&got),
            forest_to_xml_string(&expected),
            "stream vs interp on {doc}"
        );
        stats
    }

    #[test]
    fn identity_streams() {
        let m =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        for doc in ["", "a", r#"a(b("t") c) d(e(f))"#] {
            let stats = check_stream(&m, doc);
            // Identity is fully incremental: nothing accumulates.
            assert!(stats.peak_live_nodes < 32, "{}", stats.peak_live_nodes);
        }
    }

    #[test]
    fn pending_calls_high_water_mark_is_tracked() {
        // Identity holds at most a handful of unresolved calls at once
        // (the frontier of the copy), regardless of document size.
        let m =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        let stats = check_stream(&m, r#"a(b("t") c) d(e(f))"#);
        assert!(
            stats.peak_pending_calls >= 1,
            "{}",
            stats.peak_pending_calls
        );
        assert!(
            stats.peak_pending_calls <= stats.peak_live_nodes,
            "pending {} > live {}",
            stats.peak_pending_calls,
            stats.peak_live_nodes
        );
        // Deeper nesting opens more simultaneously-unresolved calls than a
        // flat document: the HWM responds to buffering pressure.
        let flat = check_stream(&m, "a b c d");
        let deep = check_stream(&m, "a(b(c(d(e(f(g))))))");
        assert!(
            deep.peak_pending_calls > flat.peak_pending_calls,
            "deep {} <= flat {}",
            deep.peak_pending_calls,
            flat.peak_pending_calls
        );
    }

    #[test]
    fn mperson_streams_like_interp() {
        let m = parse_mft(crate::text::MPERSON).unwrap();
        check_stream(
            &m,
            r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#,
        );
        check_stream(
            &m,
            r#"person(p_id(a() "perso7") name("Jim") c() p_id("person0"))"#,
        );
        check_stream(&m, r#"person(p_id("x") name("Jim"))"#);
        check_stream(&m, "");
    }

    #[test]
    fn translated_queries_stream_correctly() {
        let cases = [
            ("<o>{$input/a}</o>", "a(\"1\") b() a(\"2\")"),
            ("<o>{$input//c}</o>", "doc(a(b(c(c()) d())))"),
            (
                r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
                   return let $r := $b/name/text() return $r }</out>"#,
                r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#,
            ),
            (
                "<deepdup>{ for $x in $input/* return
                   <r> { for $y in $x/* return <r1><r2>{$y}</r2>{$y}</r1> } </r> }</deepdup>",
                "site(a(b(\"1\")) c())",
            ),
            (
                "<double><r1>{$input/*}</r1>{$input/*}</double>",
                "site(a(\"x\") b())",
            ),
            (
                "<fourstar>{$input//*//*//*//*}</fourstar>",
                "a(b(c(d(e(f())) d2())) g())",
            ),
            (
                r#"<o>{$input/r/x[./b[./n/text()="1"]/following-sibling::b/n/text()="2"]}</o>"#,
                r#"r(x(b(n("1")) b(n("2"))) x(b(n("2")) b(n("1"))))"#,
            ),
        ];
        for (query, doc) in cases {
            let q = parse_query(query).unwrap();
            let unopt = translate(&q).unwrap();
            let opt = optimize(unopt.clone());
            check_stream(&unopt, doc);
            check_stream(&opt, doc);
        }
    }

    #[test]
    fn xml_to_xml_pipeline() {
        let q = parse_query(
            r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
               return let $r := $b/name/text() return $r }</out>"#,
        )
        .unwrap();
        let m = optimize(translate(&q).unwrap());
        let doc = "<person><p_id><a/>person0</p_id><name>Jim</name><c/><name>Li</name></person>";
        let out = run_streaming_to_string(&m, doc.as_bytes()).unwrap();
        // The paper's §2.2 result: <out>JimLi</out>.
        assert_eq!(out.output, "<out>JimLi</out>");
    }

    #[test]
    fn optimized_memory_is_constant_but_unoptimized_grows() {
        // The headline experiment shape (Fig. 4): on a streamable query the
        // optimized MFT runs in O(1) buffer, the unoptimized one in O(n).
        let q =
            parse_query("<o>{ for $p in $input/people/person return <n>{$p/name/text()}</n> }</o>")
                .unwrap();
        let unopt = translate(&q).unwrap();
        let opt = optimize(unopt.clone());

        let doc_of = |n: usize| {
            let mut s = String::from("people(");
            for i in 0..n {
                s.push_str(&format!(r#"person(name("p{i}") junk("x"))"#));
            }
            s.push(')');
            parse_forest(&s).unwrap()
        };
        let peak = |m: &Mft, n: usize| {
            let (_, stats) =
                run_streaming_on_forest(m, &doc_of(n), foxq_xml::CountingSink::default()).unwrap();
            stats.peak_live_nodes
        };
        let (opt_small, opt_big) = (peak(&opt, 10), peak(&opt, 200));
        let (unopt_small, unopt_big) = (peak(&unopt, 10), peak(&unopt, 200));
        // Optimized: flat (allow small slack for arena jitter).
        assert!(
            opt_big <= opt_small + 8,
            "optimized engine buffered: {opt_small} -> {opt_big}"
        );
        // Unoptimized: grows roughly linearly (it retains qcopy($input)).
        assert!(
            unopt_big > unopt_small * 5,
            "unoptimized engine did not grow: {unopt_small} -> {unopt_big}"
        );
    }

    #[test]
    fn predicate_buffering_is_local() {
        // Buffering for a predicate is bounded by the candidate subtree, not
        // by the whole input: persons after the match don't accumulate.
        let q = parse_query(
            r#"<o>{ for $p in $input/people/person[./id/text()="yes"]
                 return $p/name/text() }</o>"#,
        )
        .unwrap();
        let m = optimize(translate(&q).unwrap());
        let doc_of = |n: usize| {
            let mut s = String::from("people(");
            for i in 0..n {
                s.push_str(&format!(r#"person(id("no{i}") name("p{i}"))"#));
            }
            s.push(')');
            parse_forest(&s).unwrap()
        };
        let peak = |n: usize| {
            let (_, stats) =
                run_streaming_on_forest(&m, &doc_of(n), foxq_xml::CountingSink::default()).unwrap();
            stats.peak_live_nodes
        };
        assert!(peak(200) <= peak(10) + 8, "{} vs {}", peak(200), peak(10));
    }

    #[test]
    fn double_query_buffers_the_input_copy() {
        // Fig. 4(g): the double query *must* buffer the input for the second
        // copy — memory grows with input even for the optimized MFT.
        let q = parse_query("<double><r1>{$input/*}</r1>{$input/*}</double>").unwrap();
        let m = optimize(translate(&q).unwrap());
        let doc_of = |n: usize| {
            let mut s = String::from("site(");
            for i in 0..n {
                s.push_str(&format!("item(v(\"i{i}\"))"));
            }
            s.push(')');
            parse_forest(&s).unwrap()
        };
        let peak = |n: usize| {
            let (_, stats) =
                run_streaming_on_forest(&m, &doc_of(n), foxq_xml::CountingSink::default()).unwrap();
            stats.peak_live_nodes
        };
        assert!(peak(200) > peak(10) * 4, "{} vs {}", peak(200), peak(10));
        check_stream(&m, "site(a(\"x\") b())");
    }

    /// Parameter-doubling chain: p0(x0, a()) … p_i(x0, y1 y1) … p_n → y1.
    /// n+2 rule expansions build a *shared* graph whose unfolding has 2^n
    /// trees — the engine's arena stays tiny (parameters are rc-shared), so
    /// neither the fuel limit nor the memory measure trips; only the output
    /// budget stands between this and 2^n emitted events.
    fn param_doubling_bomb(n: usize) -> Mft {
        let mut src = String::from("q0(%) -> p0(x0, a());\n");
        for i in 0..n {
            src.push_str(&format!("p{i}(%, y1) -> p{}(x0, y1 y1);\n", i + 1));
        }
        src.push_str(&format!("p{n}(%, y1) -> y1;\n"));
        parse_mft(&src).unwrap()
    }

    #[test]
    fn output_budget_stops_param_doubling_bomb() {
        let m = param_doubling_bomb(40); // 2^40 output trees
        let limits = StreamLimits {
            max_output_events: 10_000,
            ..StreamLimits::default()
        };
        let r = run_streaming_to_string_with_limits(&m, b"<x/>", limits);
        match r {
            Err(StreamError::OutputLimit { max_output_events }) => {
                assert_eq!(max_output_events, 10_000)
            }
            other => panic!("expected OutputLimit, got {other:?}"),
        }
        // Under the budget, the same shape still runs normally.
        let out =
            run_streaming_to_string_with_limits(&param_doubling_bomb(3), b"<x/>", limits).unwrap();
        assert_eq!(out.output, "<a></a>".repeat(8));
    }

    #[test]
    fn stay_loop_exhausts_fuel() {
        let m = parse_mft("q0(%) -> q0(x0);").unwrap();
        let f = parse_forest("a").unwrap();
        let r = run_streaming_on_forest(&m, &f, foxq_xml::NullSink);
        assert!(matches!(r, Err(StreamError::Fuel { .. })));
    }

    #[test]
    fn output_streams_before_input_ends() {
        // After opening <a>, the constant prefix of the output must already
        // be at the sink even though the document is still open.
        let q = parse_query("<o><head/>{$input//x}</o>").unwrap();
        let m = optimize(translate(&q).unwrap());
        let mut engine = Engine::new(&m, foxq_xml::CountingSink::default());
        engine.open(&Label::elem("a")).unwrap();
        assert!(
            engine.sink().nodes >= 2,
            "expected <o><head/> prefix to be emitted, saw {} nodes",
            engine.sink().nodes
        );
        engine.close().unwrap();
        let (sink, _) = engine.finish().unwrap();
        assert_eq!(sink.nodes, 2); // <o> and <head/>
    }

    #[test]
    fn stats_are_populated() {
        let m =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        let f = parse_forest("a(b(c))").unwrap();
        let (_, stats) = run_streaming_on_forest(&m, &f, foxq_xml::NullSink).unwrap();
        assert_eq!(stats.events, 7); // 3 opens + 3 closes + eof
        assert_eq!(stats.open_events, 3);
        assert_eq!(stats.close_events, 3);
        assert_eq!(stats.max_depth, 3);
        assert!(stats.expansions > 0);
        assert_eq!(stats.output_events, 6);
    }
}
