//! XML serialization with text escaping.

use foxq_forest::{NodeKind, Tree};
use std::io::{self, Write};

/// An incremental XML writer (start/end/text API).
///
/// Escaping: `&`, `<`, `>` in character data. Element names are written
/// verbatim (they come from parsed XML or from query constructors, both of
/// which restrict names). Since the data model encodes attributes as child
/// elements, no attribute syntax is produced.
pub struct XmlWriter<W> {
    out: W,
    /// Total bytes written (for benchmark reporting).
    bytes: u64,
}

impl<W: Write> XmlWriter<W> {
    pub fn new(out: W) -> Self {
        XmlWriter { out, bytes: 0 }
    }

    pub fn start_elem(&mut self, name: &str) -> io::Result<()> {
        self.bytes += name.len() as u64 + 2;
        self.out.write_all(b"<")?;
        self.out.write_all(name.as_bytes())?;
        self.out.write_all(b">")
    }

    pub fn end_elem(&mut self, name: &str) -> io::Result<()> {
        self.bytes += name.len() as u64 + 3;
        self.out.write_all(b"</")?;
        self.out.write_all(name.as_bytes())?;
        self.out.write_all(b">")
    }

    pub fn text(&mut self, content: &str) -> io::Result<()> {
        let bytes = content.as_bytes();
        let mut start = 0;
        for (i, &b) in bytes.iter().enumerate() {
            let esc: &[u8] = match b {
                b'&' => b"&amp;",
                b'<' => b"&lt;",
                b'>' => b"&gt;",
                _ => continue,
            };
            self.out.write_all(&bytes[start..i])?;
            self.out.write_all(esc)?;
            self.bytes += (i - start + esc.len()) as u64;
            start = i + 1;
        }
        self.out.write_all(&bytes[start..])?;
        self.bytes += (bytes.len() - start) as u64;
        Ok(())
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    pub fn into_inner(self) -> W {
        self.out
    }

    /// Mutable access to the underlying writer (e.g. to drain an in-memory
    /// buffer between emission boundaries without consuming the writer).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.out
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Serialize a forest to a writer.
pub fn write_forest<W: Write>(forest: &[Tree], out: W) -> io::Result<W> {
    let mut w = XmlWriter::new(out);
    for t in forest {
        write_tree(t, &mut w)?;
    }
    w.flush()?;
    Ok(w.into_inner())
}

fn write_tree<W: Write>(t: &Tree, w: &mut XmlWriter<W>) -> io::Result<()> {
    match t.label.kind {
        NodeKind::Text => w.text(&t.label.name),
        NodeKind::Element => {
            w.start_elem(&t.label.name)?;
            for c in &t.children {
                write_tree(c, w)?;
            }
            w.end_elem(&t.label.name)
        }
    }
}

/// Serialize a forest to a `String`.
pub fn forest_to_xml_string(forest: &[Tree]) -> String {
    let buf = write_forest(forest, Vec::new()).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("serialized XML is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_forest::term::parse_forest;

    #[test]
    fn escapes_text() {
        let f = parse_forest(r#"a("x < y & z > w")"#).unwrap();
        assert_eq!(forest_to_xml_string(&f), "<a>x &lt; y &amp; z &gt; w</a>");
    }

    #[test]
    fn nested_structure() {
        let f = parse_forest(r#"out(person(name("Jim")) person(name("Li")))"#).unwrap();
        assert_eq!(
            forest_to_xml_string(&f),
            "<out><person><name>Jim</name></person><person><name>Li</name></person></out>"
        );
    }

    #[test]
    fn adjacent_text_concatenates() {
        // The paper's Mperson example outputs <out>JimLi</out>.
        let f = parse_forest(r#"out("Jim" "Li")"#).unwrap();
        assert_eq!(forest_to_xml_string(&f), "<out>JimLi</out>");
    }

    #[test]
    fn byte_count_matches_output() {
        let f = parse_forest(r#"a(b("x&y"))"#).unwrap();
        let mut w = XmlWriter::new(Vec::new());
        for t in &f {
            super::write_tree(t, &mut w).unwrap();
        }
        let n = w.bytes_written();
        assert_eq!(n as usize, w.into_inner().len());
    }

    #[test]
    fn roundtrip_with_parser() {
        let xml = "<a><b>1 &amp; 2</b><c></c></a>";
        let f = crate::parse_document(xml.as_bytes()).unwrap();
        let back = forest_to_xml_string(&f);
        let f2 = crate::parse_document(back.as_bytes()).unwrap();
        assert_eq!(f, f2);
    }
}
