//! Byte-budgeted reading for untrusted input streams.
//!
//! A network serving layer must never let one request monopolize a worker:
//! [`BoundedReader`] wraps any `Read`/`BufRead` and fails with a
//! [`ByteLimitExceeded`] I/O error once more than `limit` bytes have been
//! pulled through it. Because the check runs *while streaming*, a consumer
//! such as [`crate::XmlReader`] aborts after reading `limit` bytes — the
//! oversized document is never buffered, and the transport can stop reading
//! mid-body (the `foxq-server` 413 path).

use std::io::{BufRead, Error, ErrorKind, Read};

/// The error payload a [`BoundedReader`] produces past its limit.
///
/// It travels inside a [`std::io::Error`] (and from there inside
/// [`crate::XmlError::Io`]); use [`byte_limit_exceeded`] to recognize it
/// across those wrappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteLimitExceeded {
    /// The configured budget in bytes.
    pub limit: u64,
}

impl std::fmt::Display for ByteLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "input exceeded the byte limit of {}", self.limit)
    }
}

impl std::error::Error for ByteLimitExceeded {}

/// Whether `e` is (or wraps) a [`ByteLimitExceeded`], returning the limit.
pub fn byte_limit_exceeded(e: &Error) -> Option<u64> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<ByteLimitExceeded>())
        .map(|b| b.limit)
}

/// A `Read`/`BufRead` adapter that errors once more than `limit` bytes have
/// been read from the underlying stream.
///
/// End-of-input at or under the limit is reported normally (`Ok(0)` /
/// an empty `fill_buf`); only the *limit + 1*-th byte turns into an error,
/// so a document of exactly `limit` bytes still parses.
pub struct BoundedReader<R> {
    inner: R,
    limit: u64,
    remaining: u64,
}

impl<R> BoundedReader<R> {
    /// Allow at most `limit` bytes through.
    pub fn new(inner: R, limit: u64) -> Self {
        BoundedReader {
            inner,
            limit,
            remaining: limit,
        }
    }

    /// Bytes still allowed before the limit trips.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> u64 {
        self.limit - self.remaining
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Recover the wrapped reader.
    pub fn into_inner(self) -> R {
        self.inner
    }

    fn limit_error(&self) -> Error {
        Error::new(
            ErrorKind::InvalidData,
            ByteLimitExceeded { limit: self.limit },
        )
    }
}

impl<R: Read> Read for BoundedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.remaining == 0 {
            // Only a real next byte trips the limit: probe one byte so that
            // an input of exactly `limit` bytes still reports clean EOF.
            let mut probe = [0u8; 1];
            return match self.inner.read(&mut probe)? {
                0 => Ok(0),
                _ => Err(self.limit_error()),
            };
        }
        let take = buf
            .len()
            .min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        let n = self.inner.read(&mut buf[..take])?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

impl<R: BufRead> BufRead for BoundedReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        // Borrow-checker friendly: probe the limit before borrowing the
        // buffer for return.
        if self.remaining == 0 && !self.inner.fill_buf()?.is_empty() {
            return Err(self.limit_error());
        }
        let remaining = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        let buf = self.inner.fill_buf()?;
        let n = buf.len().min(remaining);
        Ok(&buf[..n])
    }

    fn consume(&mut self, amt: usize) {
        debug_assert!(amt as u64 <= self.remaining);
        self.remaining -= amt as u64;
        self.inner.consume(amt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_the_limit_reads_cleanly() {
        let mut r = BoundedReader::new(&b"hello"[..], 10);
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello");
        assert_eq!(r.consumed(), 5);
    }

    #[test]
    fn exactly_the_limit_is_fine() {
        let mut r = BoundedReader::new(&b"hello"[..], 5);
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn one_past_the_limit_errors() {
        let mut r = BoundedReader::new(&b"hello!"[..], 5);
        let mut out = Vec::new();
        let e = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(byte_limit_exceeded(&e), Some(5));
        assert_eq!(out, b"hello"); // everything under the budget came through
    }

    #[test]
    fn bufread_path_is_bounded_too() {
        let mut r = BoundedReader::new(&b"abcdef"[..], 3);
        assert_eq!(r.fill_buf().unwrap(), b"abc");
        r.consume(3);
        let e = r.fill_buf().unwrap_err();
        assert_eq!(byte_limit_exceeded(&e), Some(3));
    }

    #[test]
    fn xml_reader_over_bounded_reader_aborts_mid_parse() {
        let xml = b"<a><b>text</b></a>";
        let bounded = BoundedReader::new(&xml[..], 7);
        let mut reader = crate::XmlReader::new(std::io::BufReader::new(bounded));
        let err = loop {
            match reader.next_event() {
                Ok(crate::XmlEvent::Eof) => panic!("expected the limit to trip"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        match err {
            crate::XmlError::Io { offset, source } => {
                assert!(offset <= 8, "offset {offset}");
                assert_eq!(byte_limit_exceeded(&source), Some(7));
            }
            other => panic!("expected Io, got {other}"),
        }
    }
}
