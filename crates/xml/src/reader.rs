//! Pull-based streaming XML parser.
//!
//! Scope: well-formed XML 1.0 documents restricted to what the paper's data
//! uses — elements, attributes, character data, CDATA sections, comments,
//! processing instructions and a DOCTYPE prolog (the latter three are
//! skipped). Namespaces are passed through verbatim as part of names.
//! Predefined and numeric character entities are decoded.
//!
//! Attributes are *expanded into leading element children* so that the
//! downstream transducers see the paper's attribute-free encoding.

use crate::error::XmlError;
use crate::event::{EventSource, XmlEvent};
use foxq_forest::Label;
use std::collections::VecDeque;
use std::io::BufRead;

/// How to treat text nodes that consist only of whitespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WhitespaceMode {
    /// Drop text nodes that are entirely ASCII whitespace (the usual choice
    /// for data-oriented XML such as XMark; this is the default).
    #[default]
    SkipWhitespaceOnly,
    /// Keep all text nodes exactly as written.
    Preserve,
    /// Trim leading/trailing ASCII whitespace; drop the node if it becomes
    /// empty.
    Trim,
}

/// A pull parser over any `BufRead`, producing [`XmlEvent`]s.
pub struct XmlReader<R> {
    input: R,
    /// Byte offset of the next unread byte (for error messages).
    offset: u64,
    /// One byte of pushback.
    pushback: Option<u8>,
    /// Events synthesized but not yet returned (attribute expansion,
    /// self-closing tags).
    queue: VecDeque<XmlEvent>,
    /// Names of currently open elements.
    stack: Vec<Label>,
    ws: WhitespaceMode,
    /// Open/close events returned so far (Eof excluded). Lets callers prove
    /// single-pass properties: fanning one reader out to N engines must not
    /// move this counter faster than N = 1 would.
    events_read: u64,
    /// Set once Eof has been returned.
    finished: bool,
    /// Scratch buffer reused across text nodes.
    scratch: Vec<u8>,
}

impl<R: BufRead> XmlReader<R> {
    pub fn new(input: R) -> Self {
        Self::with_mode(input, WhitespaceMode::default())
    }

    pub fn with_mode(input: R, ws: WhitespaceMode) -> Self {
        XmlReader {
            input,
            offset: 0,
            pushback: None,
            queue: VecDeque::new(),
            stack: Vec::new(),
            ws,
            events_read: 0,
            finished: false,
            scratch: Vec::new(),
        }
    }

    /// Current depth of open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Open/close events returned so far (`Eof` excluded).
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Pull the next event. After `Eof` has been returned, keeps returning
    /// `Eof`.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        let ev = self.pull_event()?;
        if ev != XmlEvent::Eof {
            self.events_read += 1;
        }
        Ok(ev)
    }

    fn pull_event(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some(ev) = self.queue.pop_front() {
            return Ok(ev);
        }
        if self.finished {
            return Ok(XmlEvent::Eof);
        }
        loop {
            match self.read_byte()? {
                None => {
                    if !self.stack.is_empty() {
                        return Err(XmlError::UnexpectedEof {
                            offset: self.offset,
                            open_elements: self.stack.len(),
                        });
                    }
                    self.finished = true;
                    return Ok(XmlEvent::Eof);
                }
                Some(b'<') => {
                    if let Some(ev) = self.markup()? {
                        return Ok(ev);
                    }
                    // Comment / PI / DOCTYPE: keep scanning.
                    if let Some(ev) = self.queue.pop_front() {
                        return Ok(ev);
                    }
                }
                Some(c) => {
                    if let Some(ev) = self.text(c)? {
                        return Ok(ev);
                    }
                    // Whitespace-only text dropped: keep scanning.
                }
            }
        }
    }

    // ---- byte-level helpers -------------------------------------------

    fn read_byte(&mut self) -> Result<Option<u8>, XmlError> {
        if let Some(b) = self.pushback.take() {
            self.offset += 1;
            return Ok(Some(b));
        }
        let offset = self.offset;
        let buf = self
            .input
            .fill_buf()
            .map_err(|e| XmlError::io_at(offset, e))?;
        if buf.is_empty() {
            return Ok(None);
        }
        let b = buf[0];
        self.input.consume(1);
        self.offset += 1;
        Ok(Some(b))
    }

    fn unread(&mut self, b: u8) {
        debug_assert!(self.pushback.is_none());
        self.pushback = Some(b);
        self.offset -= 1;
    }

    fn expect_byte(&mut self) -> Result<u8, XmlError> {
        self.read_byte()?.ok_or(XmlError::UnexpectedEof {
            offset: self.offset,
            open_elements: self.stack.len(),
        })
    }

    fn syntax<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError::Syntax {
            offset: self.offset,
            msg: msg.into(),
        })
    }

    // ---- markup --------------------------------------------------------

    /// Called after consuming `<`. Returns an event for tags, `None` for
    /// skipped constructs (with possible queued events).
    fn markup(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        match self.expect_byte()? {
            b'/' => self.close_tag().map(Some),
            b'!' => {
                self.bang()?;
                Ok(None)
            }
            b'?' => {
                self.skip_until(b"?>")?;
                Ok(None)
            }
            c if is_name_start(c) => self.open_tag(c).map(Some),
            c => self.syntax(format!("unexpected character {:?} after '<'", c as char)),
        }
    }

    fn read_name(&mut self, first: u8) -> Result<String, XmlError> {
        let mut name = Vec::with_capacity(16);
        name.push(first);
        loop {
            match self.read_byte()? {
                Some(c) if is_name_cont(c) => name.push(c),
                Some(c) => {
                    self.unread(c);
                    break;
                }
                None => break,
            }
        }
        String::from_utf8(name).map_err(|_| XmlError::Utf8 {
            offset: self.offset,
        })
    }

    fn skip_ws(&mut self) -> Result<(), XmlError> {
        loop {
            match self.read_byte()? {
                Some(c) if c.is_ascii_whitespace() => continue,
                Some(c) => {
                    self.unread(c);
                    return Ok(());
                }
                None => return Ok(()),
            }
        }
    }

    /// `<name attr="v"…>` or `<name …/>`; the `<` and first name byte are
    /// already consumed.
    fn open_tag(&mut self, first: u8) -> Result<XmlEvent, XmlError> {
        let name = self.read_name(first)?;
        let label = Label::elem(name);
        let mut self_closing = false;
        loop {
            self.skip_ws()?;
            match self.expect_byte()? {
                b'>' => break,
                b'/' => {
                    if self.expect_byte()? != b'>' {
                        return self.syntax("expected '>' after '/'");
                    }
                    self_closing = true;
                    break;
                }
                c if is_name_start(c) => {
                    let (aname, avalue) = self.attribute(c)?;
                    // <e a="v"> ⇒ child a("v")
                    let alabel = Label::elem(aname);
                    self.queue.push_back(XmlEvent::Open(alabel.clone()));
                    if !avalue.is_empty() {
                        let tlabel = Label::text(avalue);
                        self.queue.push_back(XmlEvent::Open(tlabel.clone()));
                        self.queue.push_back(XmlEvent::Close(tlabel));
                    }
                    self.queue.push_back(XmlEvent::Close(alabel));
                }
                c => {
                    return self.syntax(format!("unexpected {:?} in start tag", c as char));
                }
            }
        }
        if self_closing {
            self.queue.push_back(XmlEvent::Close(label.clone()));
        } else {
            self.stack.push(label.clone());
        }
        Ok(XmlEvent::Open(label))
    }

    fn attribute(&mut self, first: u8) -> Result<(String, String), XmlError> {
        let name = self.read_name(first)?;
        self.skip_ws()?;
        if self.expect_byte()? != b'=' {
            return self.syntax("expected '=' in attribute");
        }
        self.skip_ws()?;
        let quote = self.expect_byte()?;
        if quote != b'"' && quote != b'\'' {
            return self.syntax("expected quoted attribute value");
        }
        let mut raw = Vec::with_capacity(16);
        loop {
            let c = self.expect_byte()?;
            if c == quote {
                break;
            }
            if c == b'&' {
                self.entity(&mut raw)?;
            } else {
                raw.push(c);
            }
        }
        let value = String::from_utf8(raw).map_err(|_| XmlError::Utf8 {
            offset: self.offset,
        })?;
        Ok((name, value))
    }

    /// `</name>`; `</` already consumed.
    fn close_tag(&mut self) -> Result<XmlEvent, XmlError> {
        let first = self.expect_byte()?;
        if !is_name_start(first) {
            return self.syntax("expected element name in closing tag");
        }
        let name = self.read_name(first)?;
        self.skip_ws()?;
        if self.expect_byte()? != b'>' {
            return self.syntax("expected '>' in closing tag");
        }
        match self.stack.pop() {
            Some(label) if *label.name == name => Ok(XmlEvent::Close(label)),
            Some(label) => Err(XmlError::MismatchedClose {
                offset: self.offset,
                expected: label.name.to_string(),
                found: name,
            }),
            None => Err(XmlError::MismatchedClose {
                offset: self.offset,
                expected: "(document end)".into(),
                found: name,
            }),
        }
    }

    /// `<!…`: comment, CDATA or DOCTYPE. CDATA is treated as text.
    fn bang(&mut self) -> Result<(), XmlError> {
        match self.expect_byte()? {
            b'-' => {
                if self.expect_byte()? != b'-' {
                    return self.syntax("malformed comment");
                }
                self.skip_until(b"-->")
            }
            b'[' => {
                // <![CDATA[ … ]]> — produce a text node (no entity decoding).
                for &expected in b"CDATA[" {
                    if self.expect_byte()? != expected {
                        return self.syntax("malformed CDATA section");
                    }
                }
                let mut raw = Vec::new();
                let mut tail = [0u8; 2];
                loop {
                    let c = self.expect_byte()?;
                    if c == b'>' && tail == *b"]]" {
                        raw.truncate(raw.len().saturating_sub(2));
                        break;
                    }
                    raw.push(c);
                    tail[0] = tail[1];
                    tail[1] = c;
                }
                let content = String::from_utf8(raw).map_err(|_| XmlError::Utf8 {
                    offset: self.offset,
                })?;
                if !content.is_empty() {
                    let label = Label::text(content);
                    self.queue.push_back(XmlEvent::Open(label.clone()));
                    self.queue.push_back(XmlEvent::Close(label));
                }
                Ok(())
            }
            b'D' => self.skip_doctype(),
            _ => self.syntax("unsupported '<!' construct"),
        }
    }

    /// Skip a DOCTYPE declaration, tolerating an internal subset.
    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        let mut depth = 1usize; // the '<' of <!DOCTYPE
        loop {
            match self.expect_byte()? {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
    }

    fn skip_until(&mut self, terminator: &[u8]) -> Result<(), XmlError> {
        let mut matched = 0usize;
        loop {
            let c = self.expect_byte()?;
            if c == terminator[matched] {
                matched += 1;
                if matched == terminator.len() {
                    return Ok(());
                }
            } else {
                matched = if c == terminator[0] { 1 } else { 0 };
            }
        }
    }

    // ---- text ----------------------------------------------------------

    /// Accumulate character data starting with `first` until the next `<`.
    /// Returns `None` if the node is dropped by the whitespace mode.
    fn text(&mut self, first: u8) -> Result<Option<XmlEvent>, XmlError> {
        self.scratch.clear();
        if first == b'&' {
            let mut tmp = Vec::new();
            self.entity(&mut tmp)?;
            self.scratch.extend_from_slice(&tmp);
        } else {
            self.scratch.push(first);
        }
        loop {
            match self.read_byte()? {
                None => break,
                Some(b'<') => {
                    self.unread(b'<');
                    break;
                }
                Some(b'&') => {
                    let mut tmp = Vec::new();
                    self.entity(&mut tmp)?;
                    self.scratch.extend_from_slice(&tmp);
                }
                Some(c) => self.scratch.push(c),
            }
        }
        let raw = std::mem::take(&mut self.scratch);
        let content = String::from_utf8(raw).map_err(|_| XmlError::Utf8 {
            offset: self.offset,
        })?;
        let content = match self.ws {
            WhitespaceMode::Preserve => content,
            WhitespaceMode::SkipWhitespaceOnly => {
                if content.bytes().all(|b| b.is_ascii_whitespace()) {
                    return Ok(None);
                }
                content
            }
            WhitespaceMode::Trim => {
                let trimmed = content.trim();
                if trimmed.is_empty() {
                    return Ok(None);
                }
                trimmed.to_string()
            }
        };
        let label = Label::text(content);
        self.queue.push_back(XmlEvent::Close(label.clone()));
        Ok(Some(XmlEvent::Open(label)))
    }

    /// Decode an entity after its `&`.
    fn entity(&mut self, out: &mut Vec<u8>) -> Result<(), XmlError> {
        let mut name = Vec::with_capacity(8);
        loop {
            let c = self.expect_byte()?;
            if c == b';' {
                break;
            }
            if name.len() > 16 {
                return self.syntax("entity reference too long");
            }
            name.push(c);
        }
        match name.as_slice() {
            b"lt" => out.push(b'<'),
            b"gt" => out.push(b'>'),
            b"amp" => out.push(b'&'),
            b"apos" => out.push(b'\''),
            b"quot" => out.push(b'"'),
            n if n.first() == Some(&b'#') => {
                let s = std::str::from_utf8(&n[1..]).map_err(|_| XmlError::Utf8 {
                    offset: self.offset,
                })?;
                let code = if let Some(hex) = s.strip_prefix('x').or_else(|| s.strip_prefix('X')) {
                    u32::from_str_radix(hex, 16)
                } else {
                    s.parse::<u32>()
                };
                let code = match code {
                    Ok(c) => c,
                    Err(_) => return self.syntax("bad numeric character reference"),
                };
                match char::from_u32(code) {
                    Some(ch) => {
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    None => return self.syntax("invalid character code"),
                }
            }
            _ => return self.syntax("unknown entity reference"),
        }
        Ok(())
    }
}

impl<R: BufRead> EventSource for XmlReader<R> {
    fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        XmlReader::next_event(self)
    }

    fn events_read(&self) -> u64 {
        XmlReader::events_read(self)
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_name_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Vec<XmlEvent> {
        events_mode(xml, WhitespaceMode::default())
    }

    fn events_mode(xml: &str, ws: WhitespaceMode) -> Vec<XmlEvent> {
        let mut r = XmlReader::with_mode(xml.as_bytes(), ws);
        let mut out = Vec::new();
        loop {
            let ev = r.next_event().unwrap();
            let done = ev == XmlEvent::Eof;
            out.push(ev);
            if done {
                break;
            }
        }
        out
    }

    fn open(n: &str) -> XmlEvent {
        XmlEvent::Open(Label::elem(n))
    }
    fn close(n: &str) -> XmlEvent {
        XmlEvent::Close(Label::elem(n))
    }
    fn topen(t: &str) -> XmlEvent {
        XmlEvent::Open(Label::text(t))
    }
    fn tclose(t: &str) -> XmlEvent {
        XmlEvent::Close(Label::text(t))
    }

    #[test]
    fn simple_element() {
        assert_eq!(
            events("<a><b/></a>"),
            vec![open("a"), open("b"), close("b"), close("a"), XmlEvent::Eof]
        );
    }

    #[test]
    fn text_and_whitespace_modes() {
        assert_eq!(
            events("<a> hi </a>"),
            vec![
                open("a"),
                topen(" hi "),
                tclose(" hi "),
                close("a"),
                XmlEvent::Eof
            ]
        );
        assert_eq!(
            events("<a>  \n </a>"),
            vec![open("a"), close("a"), XmlEvent::Eof]
        );
        assert_eq!(
            events_mode("<a> hi </a>", WhitespaceMode::Trim),
            vec![
                open("a"),
                topen("hi"),
                tclose("hi"),
                close("a"),
                XmlEvent::Eof
            ]
        );
        assert_eq!(
            events_mode("<a> </a>", WhitespaceMode::Preserve),
            vec![
                open("a"),
                topen(" "),
                tclose(" "),
                close("a"),
                XmlEvent::Eof
            ]
        );
    }

    #[test]
    fn attributes_expand_in_order() {
        assert_eq!(
            events(r#"<a x="1" y=''/>"#),
            vec![
                open("a"),
                open("x"),
                topen("1"),
                tclose("1"),
                close("x"),
                open("y"),
                close("y"),
                close("a"),
                XmlEvent::Eof
            ]
        );
    }

    #[test]
    fn entities_decode() {
        assert_eq!(
            events("<a>&lt;x&gt; &amp; &#65;&#x42;</a>"),
            vec![
                open("a"),
                topen("<x> & AB"),
                tclose("<x> & AB"),
                close("a"),
                XmlEvent::Eof
            ]
        );
    }

    #[test]
    fn comments_pis_doctype_skipped() {
        let xml = "<?xml version=\"1.0\"?><!DOCTYPE site SYSTEM \"x.dtd\" [<!ENTITY e \"v\">]>\n<a><!-- note --><b/></a>";
        assert_eq!(
            events(xml),
            vec![open("a"), open("b"), close("b"), close("a"), XmlEvent::Eof]
        );
    }

    #[test]
    fn cdata_is_text() {
        assert_eq!(
            events("<a><![CDATA[<raw> & stuff]]></a>"),
            vec![
                open("a"),
                topen("<raw> & stuff"),
                tclose("<raw> & stuff"),
                close("a"),
                XmlEvent::Eof
            ]
        );
    }

    #[test]
    fn mismatched_close_is_an_error() {
        let mut r = XmlReader::new("<a></b>".as_bytes());
        r.next_event().unwrap();
        assert!(matches!(
            r.next_event(),
            Err(XmlError::MismatchedClose { .. })
        ));
    }

    #[test]
    fn eof_inside_element_is_an_error() {
        let mut r = XmlReader::new("<a><b>".as_bytes());
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert!(matches!(
            r.next_event(),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn eof_is_sticky() {
        let mut r = XmlReader::new("<a/>".as_bytes());
        while r.next_event().unwrap() != XmlEvent::Eof {}
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
    }

    #[test]
    fn events_read_counts_open_close_only() {
        let mut r = XmlReader::new("<a><b/>hi</a>".as_bytes());
        while r.next_event().unwrap() != XmlEvent::Eof {}
        // a, b, "hi" — 3 opens + 3 closes; sticky Eof does not count.
        assert_eq!(r.events_read(), 6);
        let _ = r.next_event().unwrap();
        assert_eq!(r.events_read(), 6);
    }

    #[test]
    fn multiple_top_level_trees_allowed() {
        // Forests, not just documents (Definition 1 allows n ≥ 0 trees).
        assert_eq!(
            events("<a/><b/>"),
            vec![open("a"), close("a"), open("b"), close("b"), XmlEvent::Eof]
        );
    }

    #[test]
    fn attribute_entity_and_quotes() {
        assert_eq!(
            events(r#"<a t="&quot;x&apos;"/>"#),
            vec![
                open("a"),
                open("t"),
                topen("\"x'"),
                tclose("\"x'"),
                close("t"),
                close("a"),
                XmlEvent::Eof
            ]
        );
    }
}
