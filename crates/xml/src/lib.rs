//! Streaming XML parser and serializer for `foxq`.
//!
//! The paper's engines process XML as a stream of parse events; this crate
//! provides that substrate (the authors use Expat under OCaml):
//!
//! * [`XmlReader`] — a pull parser producing [`XmlEvent`]s over any
//!   `BufRead`. Attributes are expanded into leading element children
//!   (`<a b="c"/>` ⇒ `a(b("c"))`), matching the paper's data adaptation
//!   ("All attribute nodes are encoded as element nodes", Table 1).
//! * [`XmlWriter`] / [`write_forest`] — serializer with text escaping.
//! * [`parse_document`] — convenience DOM loader built on the pull parser.
//! * [`XmlSink`] — the output interface used by the streaming transducer
//!   engine, with [`CountingSink`] and [`ForestSink`] implementations.
//! * [`EventSource`] — the engine-facing input interface: anything that can
//!   replay the `Open`/`Close`/`Eof` stream drives the engines
//!   ([`XmlReader`] here; `foxq_store::TapeReader` replays pre-parsed
//!   tapes without tokenizing).
//! * [`BoundedReader`] — a byte-budget adapter for untrusted transports
//!   (sockets): reading past its limit fails with a recognizable
//!   [`ByteLimitExceeded`] instead of buffering without bound.

pub mod bounded;
pub mod error;
pub mod event;
pub mod reader;
pub mod sink;
pub mod writer;

pub use bounded::{byte_limit_exceeded, BoundedReader, ByteLimitExceeded};
pub use error::XmlError;
pub use event::{EventSource, XmlEvent};
pub use reader::{WhitespaceMode, XmlReader};
pub use sink::{CountingSink, ForestSink, NullSink, WriterSink, XmlSink};
pub use writer::{forest_to_xml_string, write_forest, XmlWriter};

use foxq_forest::Forest;

/// Parse a complete XML document (or forest of documents) into memory.
pub fn parse_document(bytes: &[u8]) -> Result<Forest, XmlError> {
    parse_document_with(bytes, WhitespaceMode::SkipWhitespaceOnly)
}

/// [`parse_document`] with an explicit whitespace mode.
pub fn parse_document_with(bytes: &[u8], ws: WhitespaceMode) -> Result<Forest, XmlError> {
    let mut reader = XmlReader::with_mode(bytes, ws);
    let mut sink = ForestSink::new();
    loop {
        match reader.next_event()? {
            XmlEvent::Open(label) => sink.open(&label),
            XmlEvent::Close(label) => sink.close(&label),
            XmlEvent::Eof => break,
        }
    }
    Ok(sink.into_forest())
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_forest::term::forest_to_term;

    #[test]
    fn document_roundtrip() {
        let xml = "<book><isbn>123</isbn><author>Knuth</author></book>";
        let f = parse_document(xml.as_bytes()).unwrap();
        assert_eq!(forest_to_term(&f), r#"book(isbn("123") author("Knuth"))"#);
        assert_eq!(forest_to_xml_string(&f), xml);
    }

    #[test]
    fn attributes_become_children() {
        let f =
            parse_document(br#"<book isbn="123" price="$99"><title>Art</title></book>"#).unwrap();
        assert_eq!(
            forest_to_term(&f),
            r#"book(isbn("123") price("$99") title("Art"))"#
        );
    }

    #[test]
    fn paper_figure1_example() {
        let xml = r#"<book isbn="123" price="$99"><author>Knuth</author><title>Art of Programming</title></book>"#;
        let f = parse_document(xml.as_bytes()).unwrap();
        assert_eq!(
            forest_to_term(&f),
            r#"book(isbn("123") price("$99") author("Knuth") title("Art of Programming"))"#
        );
    }
}
