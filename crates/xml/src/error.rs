//! XML parse errors.

use std::fmt;

/// An error produced while reading or writing XML.
#[derive(Debug)]
pub enum XmlError {
    /// Malformed input at the given byte offset.
    Syntax { offset: u64, msg: String },
    /// The input ended inside an open element.
    UnexpectedEof { offset: u64, open_elements: usize },
    /// A closing tag did not match the innermost open element.
    MismatchedClose {
        offset: u64,
        expected: String,
        found: String,
    },
    /// Input was not valid UTF-8.
    Utf8 { offset: u64 },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { offset, msg } => {
                write!(f, "XML syntax error at byte {offset}: {msg}")
            }
            XmlError::UnexpectedEof {
                offset,
                open_elements,
            } => write!(
                f,
                "unexpected end of input at byte {offset} with {open_elements} unclosed element(s)"
            ),
            XmlError::MismatchedClose {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched closing tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::Utf8 { offset } => write!(f, "invalid UTF-8 near byte {offset}"),
            XmlError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        XmlError::Io(e)
    }
}
