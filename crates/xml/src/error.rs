//! XML parse errors.

use std::fmt;

/// An error produced while reading or writing XML.
#[derive(Debug)]
pub enum XmlError {
    /// Malformed input at the given byte offset.
    Syntax { offset: u64, msg: String },
    /// The input ended inside an open element.
    UnexpectedEof { offset: u64, open_elements: usize },
    /// A closing tag did not match the innermost open element.
    MismatchedClose {
        offset: u64,
        expected: String,
        found: String,
    },
    /// Input was not valid UTF-8.
    Utf8 { offset: u64 },
    /// Underlying I/O failure, tagged with the byte offset the parser had
    /// reached — a socket that times out or resets mid-document reports
    /// *where* in the document it died, not just the transport errno.
    Io { offset: u64, source: std::io::Error },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { offset, msg } => {
                write!(f, "XML syntax error at byte {offset}: {msg}")
            }
            XmlError::UnexpectedEof {
                offset,
                open_elements,
            } => write!(
                f,
                "unexpected end of input at byte {offset} with {open_elements} unclosed element(s)"
            ),
            XmlError::MismatchedClose {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched closing tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::Utf8 { offset } => write!(f, "invalid UTF-8 near byte {offset}"),
            XmlError::Io { offset, source } => {
                write!(f, "I/O error at byte {offset}: {source}")
            }
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl XmlError {
    /// Wrap an I/O error with the byte offset the reader had reached.
    pub fn io_at(offset: u64, source: std::io::Error) -> Self {
        XmlError::Io { offset, source }
    }
}
