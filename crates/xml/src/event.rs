//! Forest-structured parse events.
//!
//! The event stream corresponds one-to-one with the term structure of the
//! forest (Definition 1): `Open(l)` starts the tree `l(…)`, the matching
//! `Close(l)` ends it, and `Eof` is the ε closing the top-level forest. Text
//! nodes appear as an `Open`/`Close` pair with a text label.

use crate::error::XmlError;
use foxq_forest::Label;

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// A node begins; for text nodes the label carries the content.
    Open(Label),
    /// The most recently opened node ends.
    Close(Label),
    /// End of the document.
    Eof,
}

/// A producer of [`XmlEvent`]s — the engine-facing event-source interface.
///
/// The streaming engines (`foxq_core::stream`, the multi-query fan-out)
/// consume parse events, not XML text, so anything that can replay
/// Definition 1's `Open`/`Close`/`Eof` stream can drive them: the pull
/// parser [`crate::XmlReader`], or a pre-parsed binary tape
/// (`foxq_store::TapeReader`) that skips tokenization entirely.
///
/// Contract: after `Eof` has been returned once, further calls keep
/// returning `Eof`; `events_read` counts open/close events returned so far
/// (`Eof` excluded).
pub trait EventSource {
    /// Pull the next event.
    fn next_event(&mut self) -> Result<XmlEvent, XmlError>;

    /// Open/close events returned so far (`Eof` excluded).
    fn events_read(&self) -> u64;
}

impl<E: EventSource + ?Sized> EventSource for &mut E {
    fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        (**self).next_event()
    }

    fn events_read(&self) -> u64 {
        (**self).events_read()
    }
}
