//! Forest-structured parse events.
//!
//! The event stream corresponds one-to-one with the term structure of the
//! forest (Definition 1): `Open(l)` starts the tree `l(…)`, the matching
//! `Close(l)` ends it, and `Eof` is the ε closing the top-level forest. Text
//! nodes appear as an `Open`/`Close` pair with a text label.

use foxq_forest::Label;

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// A node begins; for text nodes the label carries the content.
    Open(Label),
    /// The most recently opened node ends.
    Close(Label),
    /// End of the document.
    Eof,
}
