//! Output sinks for the streaming transducer engine.
//!
//! The engine emits output as soon as its leftmost frontier is ground; an
//! [`XmlSink`] consumes that emission. Text nodes arrive as an `open`/`close`
//! pair carrying a text label, mirroring the input event model.

use crate::writer::XmlWriter;
use foxq_forest::{Forest, Label, NodeKind, Tree};
use std::io::Write;

/// Consumer of streamed output events.
pub trait XmlSink {
    fn open(&mut self, label: &Label);
    fn close(&mut self, label: &Label);
}

/// Discards everything (for pure timing runs).
#[derive(Default)]
pub struct NullSink;

impl XmlSink for NullSink {
    fn open(&mut self, _: &Label) {}
    fn close(&mut self, _: &Label) {}
}

/// Counts output nodes and bytes without buffering anything.
#[derive(Default, Debug, Clone, Copy)]
pub struct CountingSink {
    pub nodes: u64,
    pub bytes: u64,
}

impl XmlSink for CountingSink {
    fn open(&mut self, label: &Label) {
        self.nodes += 1;
        self.bytes += match label.kind {
            NodeKind::Element => 2 * label.name.len() as u64 + 5,
            NodeKind::Text => label.name.len() as u64,
        };
    }

    fn close(&mut self, _: &Label) {}
}

/// Builds an in-memory [`Forest`] (used by tests to compare engines).
pub struct ForestSink {
    roots: Forest,
    stack: Vec<Tree>,
}

impl ForestSink {
    pub fn new() -> Self {
        ForestSink {
            roots: Vec::new(),
            stack: Vec::new(),
        }
    }

    pub fn into_forest(mut self) -> Forest {
        // Tolerate unbalanced input by closing anything left open.
        while let Some(t) = self.stack.pop() {
            self.push_done(t);
        }
        self.roots
    }

    fn push_done(&mut self, t: Tree) {
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(t),
            None => self.roots.push(t),
        }
    }
}

impl Default for ForestSink {
    fn default() -> Self {
        Self::new()
    }
}

impl XmlSink for ForestSink {
    fn open(&mut self, label: &Label) {
        self.stack.push(Tree {
            label: label.clone(),
            children: Vec::new(),
        });
    }

    fn close(&mut self, _label: &Label) {
        if let Some(t) = self.stack.pop() {
            self.push_done(t);
        }
    }
}

/// Streams serialized XML into any `Write`.
pub struct WriterSink<W: Write> {
    writer: XmlWriter<W>,
    /// First I/O error encountered (checked at the end of a run; the sink
    /// trait itself is infallible to keep the hot path simple).
    error: Option<std::io::Error>,
}

impl<W: Write> WriterSink<W> {
    pub fn new(out: W) -> Self {
        WriterSink {
            writer: XmlWriter::new(out),
            error: None,
        }
    }

    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Finish, returning the underlying writer or the first I/O error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer.into_inner())
    }

    fn record(&mut self, r: std::io::Result<()>) {
        if self.error.is_none() {
            if let Err(e) = r {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> XmlSink for WriterSink<W> {
    fn open(&mut self, label: &Label) {
        let r = match label.kind {
            NodeKind::Element => self.writer.start_elem(&label.name),
            NodeKind::Text => self.writer.text(&label.name),
        };
        self.record(r);
    }

    fn close(&mut self, label: &Label) {
        if label.kind == NodeKind::Element {
            let r = self.writer.end_elem(&label.name);
            self.record(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed<S: XmlSink>(sink: &mut S) {
        let out = Label::elem("out");
        let jim = Label::text("Jim");
        sink.open(&out);
        sink.open(&jim);
        sink.close(&jim);
        sink.close(&out);
    }

    #[test]
    fn forest_sink_builds_tree() {
        let mut s = ForestSink::new();
        feed(&mut s);
        let f = s.into_forest();
        assert_eq!(foxq_forest::term::forest_to_term(&f), r#"out("Jim")"#);
    }

    #[test]
    fn writer_sink_serializes() {
        let mut s = WriterSink::new(Vec::new());
        feed(&mut s);
        let buf = s.finish().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "<out>Jim</out>");
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        feed(&mut s);
        assert_eq!(s.nodes, 2);
        assert!(s.bytes > 0);
    }
}
