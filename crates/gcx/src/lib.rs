//! GCX-substitute baseline: a projection-based streaming XQuery engine with
//! explicit buffer management.
//!
//! The paper's evaluation (§5) compares the MFT engine against **GCX**
//! (Koch, Scherzinger, Schmidt; VLDB'07) — "the fastest XQuery streaming
//! engine we know", built on static path projection and dynamic buffer
//! minimization. GCX is closed C++ software; this crate implements a
//! behaviourally faithful substitute with the same architecture and the
//! same *limitations*, so the evaluation's qualitative shapes carry over:
//!
//! * static **projection** of the paths a query can touch ([`proj`]);
//! * per-candidate **buffers** holding only projected nodes, freed as soon
//!   as a binding is evaluated ([`engine`]);
//! * **no `following-sibling`** axis — Q4 fails with
//!   [`GcxError::Unsupported`], reproducing the paper's Fig. 4(c) "N/A";
//! * queries whose output needs the input twice (the `double` query) force
//!   buffering of the whole document, as observed in Fig. 4(g).

pub mod engine;
pub mod proj;

pub use engine::{run_gcx, run_gcx_on_forest, GcxEngine, GcxError, GcxStats};
pub use proj::{build_projection, Projection};
