//! The GCX-substitute streaming engine.
//!
//! Architecture (modelled on GCX's published design — static projection plus
//! dynamic buffer minimization):
//!
//! 1. **Compile** the query into an output *plan* (the constant constructor
//!    skeleton) with *slots* — the top-level `for`-loops and paths. Queries
//!    outside the supported fragment are rejected with
//!    [`GcxError::Unsupported`]; notably `following-sibling` (the paper's
//!    Fig. 4(c): "GCX fails to run because the following-sibling axis is not
//!    supported").
//! 2. **Match** each slot's binding path over the event stream with a
//!    set-of-active-steps automaton; a match opens a *candidate*.
//! 3. **Buffer** for each open candidate a projected copy of its subtree
//!    (see [`crate::proj`]) — this is GCX's "buffer only what later
//!    evaluation can still need".
//! 4. On the candidate's closing tag, check the binding predicates on the
//!    buffer, evaluate the body on it (nested for/let run here), and either
//!    stream the result out (first slot in document order) or hold it until
//!    the plan reaches that slot at end of input.
//!
//! The buffer-size statistics ([`GcxStats`]) count live projected nodes plus
//! held results — the quantity plotted in the paper's memory graphs.

use crate::proj::{build_projection, Projection};
use foxq_forest::{Forest, Label, NodeKind, Tree};
use foxq_xml::{XmlError, XmlEvent, XmlReader, XmlSink};
use foxq_xquery::ast::{Axis, NodeTest, Path, Pred, Query, Step};
use foxq_xquery::eval::{eval_on_doc, node_satisfies, Doc};
use foxq_xquery::XqRunError;
use std::collections::BTreeSet;
use std::io::BufRead;

/// Failure of a GCX-substitute run.
#[derive(Debug)]
pub enum GcxError {
    /// The query is outside the supported fragment (as with real GCX).
    Unsupported(String),
    Xml(XmlError),
    Run(XqRunError),
}

impl std::fmt::Display for GcxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcxError::Unsupported(m) => write!(f, "unsupported by the GCX baseline: {m}"),
            GcxError::Xml(e) => write!(f, "{e}"),
            GcxError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GcxError {}

impl From<XmlError> for GcxError {
    fn from(e: XmlError) -> Self {
        GcxError::Xml(e)
    }
}

impl From<XqRunError> for GcxError {
    fn from(e: XqRunError) -> Self {
        GcxError::Run(e)
    }
}

/// Statistics of one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcxStats {
    /// Input events processed.
    pub events: u64,
    /// Peak buffered nodes (projected candidate fragments + held results).
    pub peak_buffered_nodes: usize,
    /// Output events pushed to the sink.
    pub output_events: u64,
}

// ---------------------------------------------------------------------------
// Query plan
// ---------------------------------------------------------------------------

enum OutItem {
    Open(Label),
    Close(Label),
    Text(String),
    Slot(usize),
}

struct Slot {
    /// Binding path steps (top-level, rooted at `$input`).
    steps: Vec<Step>,
    /// Predicates of the final step, checked on the buffered candidate.
    final_preds: Vec<Pred>,
    var: String,
    body: Query,
    proj: Projection,
}

struct Plan {
    items: Vec<OutItem>,
    slots: Vec<Slot>,
}

fn compile(q: &Query) -> Result<Plan, GcxError> {
    // GCX-wide restriction: no following-sibling anywhere.
    let mut fsib = false;
    q.visit_paths(&mut |p: &Path| fsib |= p.uses_axis(Axis::FollowingSibling));
    if fsib {
        return Err(GcxError::Unsupported("the following-sibling axis".into()));
    }
    let mut plan = Plan {
        items: Vec::new(),
        slots: Vec::new(),
    };
    compile_into(q, &mut plan)?;
    Ok(plan)
}

fn compile_into(q: &Query, plan: &mut Plan) -> Result<(), GcxError> {
    match q {
        Query::Element { name, content } => {
            plan.items.push(OutItem::Open(Label::elem(name.clone())));
            for c in content {
                compile_into(c, plan)?;
            }
            plan.items.push(OutItem::Close(Label::elem(name.clone())));
            Ok(())
        }
        Query::Text(t) => {
            plan.items.push(OutItem::Text(t.clone()));
            Ok(())
        }
        Query::Seq(items) => {
            for c in items {
                compile_into(c, plan)?;
            }
            Ok(())
        }
        Query::For { var, path, body } => add_slot(plan, path, var.clone(), (**body).clone()),
        Query::Path(p) => {
            // A bare top-level path: emit a copy of every match.
            let var = "#match".to_string();
            let body = Query::Path(Path {
                start: var.clone(),
                steps: vec![],
            });
            add_slot(plan, p, var, body)
        }
        // Top-level let: inline the bound value at every use site. The
        // fragment is pure, so substitution preserves semantics; the paper's
        // GCX only evaluates lets inside for-bodies, but rejecting the form
        // outright was leaving easy queries on the table (ROADMAP item).
        Query::Let { var, value, body } => {
            // Substitution clones the value once per use, which across
            // nested lets is exponential; predict the size (an upper bound
            // on the result) and reject rather than blow up. The check runs
            // per let, so every intermediate query stays under the cap.
            let uses = count_var_uses(body, var);
            let predicted = body.size() + uses.saturating_mul(value.size());
            if predicted > MAX_INLINED_SIZE {
                return Err(GcxError::Unsupported(format!(
                    "let inlining would grow the query past {MAX_INLINED_SIZE} nodes"
                )));
            }
            let mut value_free = BTreeSet::new();
            free_path_vars(value, &mut Vec::new(), &mut value_free);
            let inlined = substitute(body, var, value, &value_free)?;
            compile_into(&inlined, plan)
        }
    }
}

/// Upper bound on the size of a query produced by let inlining.
const MAX_INLINED_SIZE: usize = 4096;

/// Uses of `$var` in `q` (path starts, respecting shadowing) — each one
/// clones the let value during substitution.
fn count_var_uses(q: &Query, var: &str) -> usize {
    match q {
        Query::Text(_) => 0,
        Query::Element { content, .. } => content.iter().map(|c| count_var_uses(c, var)).sum(),
        Query::Seq(qs) => qs.iter().map(|c| count_var_uses(c, var)).sum(),
        Query::Path(p) => usize::from(p.start == var),
        Query::For { var: v, path, body } => {
            usize::from(path.start == var)
                + if v == var {
                    0
                } else {
                    count_var_uses(body, var)
                }
        }
        Query::Let {
            var: v,
            value,
            body,
        } => {
            count_var_uses(value, var)
                + if v == var {
                    0
                } else {
                    count_var_uses(body, var)
                }
        }
    }
}

/// Replace every use of `$var` in `q` by `value`. Capture-avoiding:
/// substitution stops at a rebinding of `$var` itself, and descending under
/// a binder that shadows a *free variable of the value* (`value_free`) is
/// rejected rather than silently capturing it. Paths *continuing* from the
/// variable (`$v/a/b`) concatenate onto a path-valued binding and are
/// unsupported for constructed values — as in the reference semantics, where
/// a path from constructed content is an error.
fn substitute(
    q: &Query,
    var: &str,
    value: &Query,
    value_free: &BTreeSet<String>,
) -> Result<Query, GcxError> {
    let guard_capture = |v: &str| {
        if value_free.contains(v) {
            Err(GcxError::Unsupported(format!(
                "let inlining would capture ${v} under a shadowing binder"
            )))
        } else {
            Ok(())
        }
    };
    Ok(match q {
        Query::Text(t) => Query::Text(t.clone()),
        Query::Element { name, content } => Query::Element {
            name: name.clone(),
            content: content
                .iter()
                .map(|c| substitute(c, var, value, value_free))
                .collect::<Result<_, _>>()?,
        },
        Query::Seq(qs) => Query::Seq(
            qs.iter()
                .map(|c| substitute(c, var, value, value_free))
                .collect::<Result<_, _>>()?,
        ),
        Query::Path(p) => return subst_path(p, var, value),
        Query::For { var: v, path, body } => {
            let path = match subst_path(path, var, value)? {
                Query::Path(p) => p,
                _ => {
                    return Err(GcxError::Unsupported(
                        "for over a let variable bound to non-path content".into(),
                    ))
                }
            };
            let body = if v == var {
                (**body).clone() // shadowed: no substitution below
            } else {
                guard_capture(v)?;
                substitute(body, var, value, value_free)?
            };
            Query::For {
                var: v.clone(),
                path,
                body: Box::new(body),
            }
        }
        Query::Let {
            var: v,
            value: inner,
            body,
        } => {
            let inner = substitute(inner, var, value, value_free)?;
            let body = if v == var {
                (**body).clone()
            } else {
                guard_capture(v)?;
                substitute(body, var, value, value_free)?
            };
            Query::Let {
                var: v.clone(),
                value: Box::new(inner),
                body: Box::new(body),
            }
        }
    })
}

/// Substitute into one path. `$v` alone becomes the value; `$v/steps…`
/// concatenates onto a path-valued binding.
fn subst_path(p: &Path, var: &str, value: &Query) -> Result<Query, GcxError> {
    if p.start != var {
        return Ok(Query::Path(p.clone()));
    }
    if p.steps.is_empty() {
        return Ok(value.clone());
    }
    match value {
        Query::Path(vp) => Ok(Query::Path(Path {
            start: vp.start.clone(),
            steps: vp.steps.iter().chain(&p.steps).cloned().collect(),
        })),
        _ => Err(GcxError::Unsupported(
            "path from a let variable bound to constructed content".into(),
        )),
    }
}

/// Path-start variables free in `q` (not bound by an enclosing for/let
/// within `q` itself).
fn free_path_vars(q: &Query, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
    let record = |p: &Path, bound: &Vec<String>, out: &mut BTreeSet<String>| {
        if !bound.iter().any(|b| b == &p.start) {
            out.insert(p.start.clone());
        }
    };
    match q {
        Query::Text(_) => {}
        Query::Element { content, .. } => {
            for c in content {
                free_path_vars(c, bound, out);
            }
        }
        Query::Seq(qs) => {
            for c in qs {
                free_path_vars(c, bound, out);
            }
        }
        Query::Path(p) => record(p, bound, out),
        Query::For { var, path, body } => {
            record(path, bound, out);
            bound.push(var.clone());
            free_path_vars(body, bound, out);
            bound.pop();
        }
        Query::Let { var, value, body } => {
            free_path_vars(value, bound, out);
            bound.push(var.clone());
            free_path_vars(body, bound, out);
            bound.pop();
        }
    }
}

fn add_slot(plan: &mut Plan, path: &Path, var: String, body: Query) -> Result<(), GcxError> {
    if path.start != "input" {
        return Err(GcxError::Unsupported(format!(
            "top-level path rooted at ${} (must be $input)",
            path.start
        )));
    }
    if path.steps.is_empty() {
        return Err(GcxError::Unsupported("bare $input at top level".into()));
    }
    // Predicates are supported on the final step only: the candidate buffer
    // is complete exactly when the binding node closes.
    let k = path.steps.len() - 1;
    for (i, s) in path.steps.iter().enumerate() {
        if i != k && !s.preds.is_empty() {
            return Err(GcxError::Unsupported(
                "predicates on non-final binding steps".into(),
            ));
        }
    }
    // The body runs on the buffered candidate with only `var` bound; a free
    // reference to anything else (notably $input) would silently resolve
    // against the candidate fragment and disagree with the reference.
    let mut free = BTreeSet::new();
    free_path_vars(&body, &mut vec![var.clone()], &mut free);
    if let Some(v) = free.into_iter().next() {
        return Err(GcxError::Unsupported(format!(
            "binding body references ${v}, which is not the binding variable"
        )));
    }
    let mut steps = path.steps.clone();
    let final_preds = std::mem::take(&mut steps[k].preds);
    let mut proj = build_projection(&var, &body);
    for p in &final_preds {
        proj.mark_pred_public(&[0], p);
    }
    plan.items.push(OutItem::Slot(plan.slots.len()));
    plan.slots.push(Slot {
        steps,
        final_preds,
        var,
        body,
        proj,
    });
    Ok(())
}

// ---------------------------------------------------------------------------
// Path matcher (set of active steps, as in the MFT translation)
// ---------------------------------------------------------------------------

struct Matcher {
    stack: Vec<BTreeSet<usize>>,
}

impl Matcher {
    fn new() -> Self {
        Matcher {
            stack: vec![[0].into_iter().collect()],
        }
    }

    /// Push one open event; returns whether this node is a binding match.
    fn open(&mut self, label: &Label, steps: &[Step]) -> bool {
        let top = self.stack.last().unwrap();
        let matched: Vec<usize> = top
            .iter()
            .copied()
            .filter(|&i| test_matches(&steps[i].test, label))
            .collect();
        let is_binding = matched.contains(&(steps.len() - 1));
        let mut child: BTreeSet<usize> = top
            .iter()
            .copied()
            .filter(|&i| steps[i].axis == Axis::Descendant)
            .collect();
        for &i in &matched {
            if i + 1 < steps.len() {
                child.insert(i + 1);
            }
        }
        self.stack.push(child);
        is_binding
    }

    fn close(&mut self) {
        self.stack.pop();
    }
}

fn test_matches(test: &NodeTest, label: &Label) -> bool {
    match test {
        NodeTest::Name(n) => label.kind == NodeKind::Element && &*label.name == n.as_str(),
        NodeTest::AnyElem => label.kind == NodeKind::Element,
        NodeTest::Text => label.kind == NodeKind::Text,
        NodeTest::AnyNode => true,
    }
}

// ---------------------------------------------------------------------------
// Candidates
// ---------------------------------------------------------------------------

/// Projection cursor during buffering.
enum Cursor {
    KeepAll,
    Nodes(Vec<usize>),
    /// Below an unkept node: nothing is kept, only depth is tracked.
    Skip,
}

struct Candidate {
    slot: usize,
    /// Partially-built kept subtrees; `None` for skipped nodes.
    node_stack: Vec<Option<Tree>>,
    cursor_stack: Vec<Cursor>,
    /// Number of buffered nodes (for accounting).
    size: usize,
    root: Option<Tree>,
    /// Results of already-completed *descendant* candidates of the same
    /// slot, to be emitted after this candidate's own result (document
    /// order: ancestors' bindings precede descendants' in preorder).
    deferred: Vec<Forest>,
}

impl Candidate {
    fn new(slot: usize, label: &Label) -> Self {
        Candidate {
            slot,
            node_stack: vec![Some(Tree {
                label: label.clone(),
                children: Vec::new(),
            })],
            cursor_stack: vec![Cursor::Nodes(vec![0])],
            size: 1,
            root: None,
            deferred: Vec::new(),
        }
    }

    fn open(&mut self, label: &Label, proj: &Projection) {
        let keep = match self.cursor_stack.last().unwrap() {
            Cursor::Skip => None,
            Cursor::KeepAll => Some(Cursor::KeepAll),
            Cursor::Nodes(active) => {
                if active.iter().any(|&p| proj.nodes[p].keep_all) {
                    Some(Cursor::KeepAll)
                } else if label.kind == NodeKind::Text {
                    active
                        .iter()
                        .any(|&p| proj.nodes[p].text)
                        .then_some(Cursor::Nodes(Vec::new()))
                } else {
                    let mut next = Vec::new();
                    for &p in active {
                        if let Some(&c) = proj.nodes[p].by_name.get(&*label.name) {
                            next.push(c);
                        }
                        if let Some(c) = proj.nodes[p].star {
                            next.push(c);
                        }
                    }
                    (!next.is_empty()).then(|| {
                        if next.iter().any(|&c| proj.nodes[c].keep_all) {
                            Cursor::KeepAll
                        } else {
                            Cursor::Nodes(next)
                        }
                    })
                }
            }
        };
        match keep {
            Some(cursor) => {
                self.node_stack.push(Some(Tree {
                    label: label.clone(),
                    children: Vec::new(),
                }));
                self.cursor_stack.push(cursor);
                self.size += 1;
            }
            None => {
                self.node_stack.push(None);
                self.cursor_stack.push(Cursor::Skip);
            }
        }
    }

    /// Returns `true` when the candidate just completed.
    fn close(&mut self) -> bool {
        let done = self.node_stack.pop().unwrap();
        self.cursor_stack.pop();
        match self.node_stack.last_mut() {
            Some(Some(parent)) => {
                if let Some(t) = done {
                    parent.children.push(t);
                }
                false
            }
            Some(None) => false, // skipped region
            None => {
                self.root = done;
                true
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Run the GCX-substitute engine over an XML byte stream.
pub fn run_gcx<R: BufRead, S: XmlSink>(
    query: &Query,
    mut reader: XmlReader<R>,
    sink: S,
) -> Result<(S, GcxStats), GcxError> {
    let mut engine = GcxEngine::new(query, sink)?;
    loop {
        match reader.next_event()? {
            XmlEvent::Open(label) => engine.open(&label)?,
            XmlEvent::Close(_) => engine.close()?,
            XmlEvent::Eof => return engine.finish(),
        }
    }
}

/// Drive the engine from an in-memory forest (tests/benchmarks).
pub fn run_gcx_on_forest<S: XmlSink>(
    query: &Query,
    forest: &[Tree],
    sink: S,
) -> Result<(S, GcxStats), GcxError> {
    let mut engine = GcxEngine::new(query, sink)?;
    fn feed<S: XmlSink>(e: &mut GcxEngine<S>, t: &Tree) -> Result<(), GcxError> {
        e.open(&t.label)?;
        for c in &t.children {
            feed(e, c)?;
        }
        e.close()
    }
    for t in forest {
        feed(&mut engine, t)?;
    }
    engine.finish()
}

/// The streaming engine (see the module docs for the architecture).
pub struct GcxEngine<S> {
    plan: Plan,
    sink: S,
    matchers: Vec<Matcher>,
    candidates: Vec<Candidate>,
    /// Buffered results per slot (for slots after the live one).
    held: Vec<Vec<Forest>>,
    held_nodes: usize,
    /// Index into `plan.items`: everything before it has been emitted.
    cursor: usize,
    /// The slot currently allowed to stream, if the cursor sits on one.
    live_slot: Option<usize>,
    stats: GcxStats,
    buffered_now: usize,
}

impl<S: XmlSink> GcxEngine<S> {
    pub fn new(query: &Query, sink: S) -> Result<Self, GcxError> {
        let plan = compile(query)?;
        let matchers = plan.slots.iter().map(|_| Matcher::new()).collect();
        let held = plan.slots.iter().map(|_| Vec::new()).collect();
        let mut engine = GcxEngine {
            plan,
            sink,
            matchers,
            candidates: Vec::new(),
            held,
            held_nodes: 0,
            cursor: 0,
            live_slot: None,
            stats: GcxStats::default(),
            buffered_now: 0,
        };
        engine.advance_plan();
        Ok(engine)
    }

    /// Emit constant plan items until hitting a slot (or the end).
    fn advance_plan(&mut self) {
        self.live_slot = None;
        while self.cursor < self.plan.items.len() {
            match &self.plan.items[self.cursor] {
                OutItem::Open(l) => {
                    self.sink.open(l);
                    self.stats.output_events += 1;
                }
                OutItem::Close(l) => {
                    self.sink.close(l);
                    self.stats.output_events += 1;
                }
                OutItem::Text(t) => {
                    let label = Label::text(t.clone());
                    self.sink.open(&label);
                    self.sink.close(&label);
                    self.stats.output_events += 2;
                }
                OutItem::Slot(k) => {
                    self.live_slot = Some(*k);
                    return;
                }
            }
            self.cursor += 1;
        }
    }

    pub fn open(&mut self, label: &Label) -> Result<(), GcxError> {
        self.stats.events += 1;
        // 1. Advance matchers; remember which slots bind here.
        let mut bindings = Vec::new();
        for (k, m) in self.matchers.iter_mut().enumerate() {
            if m.open(label, &self.plan.slots[k].steps) {
                bindings.push(k);
            }
        }
        // 2. Feed existing candidates.
        for c in &mut self.candidates {
            let before = c.size;
            c.open(label, &self.plan.slots[c.slot].proj);
            self.buffered_now += c.size - before;
        }
        // 3. Open new candidates.
        for k in bindings {
            self.candidates.push(Candidate::new(k, label));
            self.buffered_now += 1;
        }
        self.track_peak();
        Ok(())
    }

    pub fn close(&mut self) -> Result<(), GcxError> {
        self.stats.events += 1;
        let mut completed = Vec::new();
        let mut idx = 0;
        while idx < self.candidates.len() {
            if self.candidates[idx].close() {
                completed.push(self.candidates.remove(idx));
            } else {
                idx += 1;
            }
        }
        for m in &mut self.matchers {
            m.close();
        }
        for cand in completed {
            self.buffered_now -= cand.size;
            self.finish_candidate(cand)?;
        }
        self.track_peak();
        Ok(())
    }

    fn finish_candidate(&mut self, cand: Candidate) -> Result<(), GcxError> {
        let mut block: Vec<Forest> = Vec::new();
        if let Some(root) = &cand.root {
            let slot = &self.plan.slots[cand.slot];
            let doc = Doc::index(std::slice::from_ref(root));
            // Binding node is preorder index 1 (0 is the virtual document
            // node).
            if node_satisfies(&doc, 1, &slot.final_preds) {
                let result = eval_on_doc(&slot.body, &doc, &[(slot.var.clone(), 1)])?;
                self.held_nodes += foxq_forest::forest_size(&result);
                block.push(result);
            }
        }
        block.extend(cand.deferred);
        // Document order: if a same-slot ancestor candidate is still open
        // (nested matches of a descendant path), our block must come after
        // its result — defer.
        if let Some(anc) = self
            .candidates
            .iter_mut()
            .rev()
            .find(|c| c.slot == cand.slot)
        {
            anc.deferred.extend(block);
            self.track_peak();
            return Ok(());
        }
        for f in block {
            self.held_nodes -= foxq_forest::forest_size(&f);
            if self.live_slot == Some(cand.slot) {
                self.emit_forest(&f);
            } else {
                self.held_nodes += foxq_forest::forest_size(&f);
                self.held[cand.slot].push(f);
            }
        }
        self.track_peak();
        Ok(())
    }

    fn emit_forest(&mut self, forest: &[Tree]) {
        for t in forest {
            self.emit_tree(t);
        }
    }

    fn emit_tree(&mut self, t: &Tree) {
        self.sink.open(&t.label);
        self.stats.output_events += 1;
        for c in &t.children {
            self.emit_tree(c);
        }
        self.sink.close(&t.label);
        self.stats.output_events += 1;
    }

    pub fn finish(mut self) -> Result<(S, GcxStats), GcxError> {
        self.stats.events += 1;
        // No more input: flush the rest of the plan in order. The slot that
        // was live already streamed its results; every other slot's held
        // results are emitted at its plan position.
        let streamed = self.live_slot;
        while self.cursor < self.plan.items.len() {
            match &self.plan.items[self.cursor] {
                OutItem::Open(l) => {
                    self.sink.open(l);
                    self.stats.output_events += 1;
                }
                OutItem::Close(l) => {
                    self.sink.close(l);
                    self.stats.output_events += 1;
                }
                OutItem::Text(t) => {
                    let label = Label::text(t.clone());
                    self.sink.open(&label);
                    self.sink.close(&label);
                    self.stats.output_events += 2;
                }
                OutItem::Slot(k) => {
                    if streamed != Some(*k) {
                        let held = std::mem::take(&mut self.held[*k]);
                        for f in held {
                            self.held_nodes -= foxq_forest::forest_size(&f);
                            self.emit_forest(&f);
                        }
                    }
                }
            }
            self.cursor += 1;
        }
        Ok((self.sink, self.stats))
    }

    fn track_peak(&mut self) {
        let now = self.buffered_now + self.held_nodes;
        if now > self.stats.peak_buffered_nodes {
            self.stats.peak_buffered_nodes = now;
        }
    }

    /// Current buffered node count.
    pub fn buffered_nodes(&self) -> usize {
        self.buffered_now + self.held_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_forest::term::parse_forest;
    use foxq_xml::{forest_to_xml_string, ForestSink};
    use foxq_xquery::{eval_query, parse_query};

    fn check(query: &str, doc: &str) -> GcxStats {
        let q = parse_query(query).unwrap();
        let f = parse_forest(doc).unwrap();
        let expected = eval_query(&q, &f).unwrap();
        let (sink, stats) = run_gcx_on_forest(&q, &f, ForestSink::new()).unwrap();
        assert_eq!(
            forest_to_xml_string(&sink.into_forest()),
            forest_to_xml_string(&expected),
            "gcx vs reference on {query}"
        );
        stats
    }

    #[test]
    fn q1_style_query() {
        check(
            r#"<q1>{ for $p in $input/site/people/person[./p_id/text()="person0"]
                 return $p/name/text() }</q1>"#,
            r#"site(people(person(p_id("person0") name("Jim")) person(p_id("x") name("No"))))"#,
        );
    }

    #[test]
    fn q2_style_nested_loops() {
        check(
            "<q2>{ for $o in $input/site/open_auctions/open_auction return
               <increase>{ for $i in $o/bidder/increase return <bid>{$i/text()}</bid> }</increase>
             }</q2>",
            r#"site(open_auctions(open_auction(bidder(increase("1")) bidder(increase("2")))
                                  open_auction(bidder(increase("3")))))"#,
        );
    }

    #[test]
    fn q17_style_empty_predicate() {
        check(
            r#"<o>{ for $p in $input/people/person[empty(./homepage/text())]
                 return <person><name>{$p/name/text()}</name></person> }</o>"#,
            r#"people(person(name("A") homepage("h")) person(name("B")))"#,
        );
    }

    #[test]
    fn double_query_buffers_second_copy() {
        let stats = check(
            "<double><r1>{$input/*}</r1>{$input/*}</double>",
            r#"site(a("1") b("2") c("3"))"#,
        );
        // The second {$input/*} must be buffered until EOF.
        assert!(
            stats.peak_buffered_nodes >= 6,
            "{}",
            stats.peak_buffered_nodes
        );
    }

    #[test]
    fn fourstar_query() {
        check(
            "<fourstar>{$input//*//*//*//*}</fourstar>",
            "a(b(c(d(e(f)) g)) h)",
        );
    }

    #[test]
    fn deepdup_query() {
        check(
            "<deepdup>{ for $x in $input/* return
               <r> { for $y in $x/* return <r1><r2>{$y}</r2>{$y}</r1> } </r> }</deepdup>",
            "site(a(b(\"1\")) c(d))",
        );
    }

    #[test]
    fn following_sibling_is_rejected_like_gcx() {
        let q = parse_query(
            r#"for $b in $input/site/open_auctions/open_auction
                 [./bidder[./p/text()="x"]/following-sibling::bidder/p/text()="y"]
               return <history>{$b/reserve/text()}</history>"#,
        )
        .unwrap();
        let f = parse_forest("site()").unwrap();
        assert!(matches!(
            run_gcx_on_forest(&q, &f, ForestSink::new()),
            Err(GcxError::Unsupported(_))
        ));
    }

    #[test]
    fn projection_keeps_buffers_small() {
        // Only name/text is projected; the junk subtrees must not be
        // buffered.
        let q =
            parse_query("<o>{ for $p in $input/people/person return <n>{$p/name/text()}</n> }</o>")
                .unwrap();
        let doc_of = |junk: usize| {
            let mut s = String::from("people(");
            for i in 0..10 {
                s.push_str(&format!("person(name(\"p{i}\") junk("));
                for j in 0..junk {
                    s.push_str(&format!("x{j}() "));
                }
                s.push_str("))");
            }
            s.push(')');
            parse_forest(&s).unwrap()
        };
        let q2 =
            parse_query("<o>{ for $p in $input/people/person return <n>{$p/name/text()}</n> }</o>")
                .unwrap();
        let peak = |junk: usize| {
            let (_, stats) =
                run_gcx_on_forest(&q2, &doc_of(junk), foxq_xml::CountingSink::default()).unwrap();
            stats.peak_buffered_nodes
        };
        // Junk size must not affect the buffer.
        assert_eq!(peak(2), peak(50));
        check(
            "<o>{ for $p in $input/people/person return <n>{$p/name/text()}</n> }</o>",
            r#"people(person(name("A") junk(x())) person(name("B")))"#,
        );
        let _ = q;
    }

    #[test]
    fn interleaved_constant_content() {
        check(
            "<o><head/>{$input/a}<sep/>{$input/b}<tail/></o>",
            "a(\"1\") b(\"2\") a(\"3\")",
        );
    }

    #[test]
    fn streaming_emits_first_slot_early() {
        let q = parse_query("<o>{$input/a}{$input/b}</o>").unwrap();
        let mut e = GcxEngine::new(&q, foxq_xml::CountingSink::default()).unwrap();
        e.open(&Label::elem("a")).unwrap();
        e.close().unwrap();
        // <o> + the copy of <a/> already emitted.
        assert!(e.sink.nodes >= 2, "{}", e.sink.nodes);
        let (sink, _) = e.finish().unwrap();
        assert_eq!(sink.nodes, 2); // <o>, <a/> — no b matches
    }

    #[test]
    fn unsupported_top_level_forms() {
        let f = parse_forest("x").unwrap();
        for src in [
            "<o>{$input}</o>",
            // A path continuing from constructed content (the reference
            // semantics rejects this too).
            "let $a := <x/> return <o>{$a/b}</o>",
            // The slot body references $input, which is not buffered.
            "for $p in $input/a return $input/b",
            // Inlining $a under a binder that shadows $input would capture
            // it (rewriting $input/r/a against the inner binding) — must be
            // rejected, not silently mis-evaluated.
            "let $a := $input/r/a return let $input := $input/r/y return <o>{$a}</o>",
            "let $q := $input/r/a return for $input in $input/r return <o>{$q}</o>",
        ] {
            let q = parse_query(src).unwrap();
            assert!(
                matches!(
                    run_gcx_on_forest(&q, &f, ForestSink::new()),
                    Err(GcxError::Unsupported(_))
                ),
                "{src}"
            );
        }
    }

    #[test]
    fn exponential_let_nesting_is_rejected_not_materialized() {
        // Each let doubles the uses of the previous variable; inlining all
        // of them would build a 2^30-node query. The per-let size cap must
        // reject this instantly instead.
        let mut src = String::from("let $a0 := $input/r/a return ");
        for i in 1..=30 {
            let p = i - 1;
            src.push_str(&format!("let $a{i} := <x>{{$a{p}}}{{$a{p}}}</x> return "));
        }
        src.push_str("<o>{$a30}</o>");
        let q = parse_query(&src).unwrap();
        let f = parse_forest("r(a())").unwrap();
        let t0 = std::time::Instant::now();
        let r = run_gcx_on_forest(&q, &f, ForestSink::new());
        assert!(matches!(r, Err(GcxError::Unsupported(_))));
        assert!(t0.elapsed().as_secs() < 5, "cap did not bound inlining");
    }

    #[test]
    fn top_level_let_is_inlined() {
        // Regression for the ROADMAP "GCX baseline gaps" item: top-level let
        // used to be rejected outright.
        let doc = r#"r(a(b("1")) a(b("2")) c())"#;
        check("let $a := $input/r/a return <o>{$a}</o>", doc);
        // Path continuation concatenates onto the bound path.
        check("let $a := $input/r/a return <o>{$a/b}</o>", doc);
        // The value may be constructed content when used bare.
        check("let $a := <k>x</k> return <o>{$a}{$a}</o>", doc);
        // Nested lets and shadowing.
        check(
            "let $a := $input/r/a return let $b := $a/b return <o>{$b}</o>",
            doc,
        );
        check(
            "let $a := $input/r/c return let $a := $input/r/a return <o>{$a}</o>",
            doc,
        );
        // Lets interleaved with for-slots still stream.
        check(
            "let $t := <hdr/> return <o>{$t}{ for $x in $input/r/a return $x/b }</o>",
            doc,
        );
    }
}
