//! Static projection — the analysis that gives GCX its memory edge.
//!
//! For each `for`-binding the engine buffers a *projected* copy of the
//! candidate subtree: only nodes lying on paths the body (or the binding
//! predicates) can reach are retained. A `descendant` step or an output use
//! of a variable (`{$v}`, constructor content) conservatively keeps the
//! whole region (`keep_all`).

use foxq_forest::FxHashMap;
use foxq_xquery::ast::{Axis, NodeTest, Pred, Query, Step};

/// One node of the projection tree.
#[derive(Default, Debug, Clone)]
pub struct ProjNode {
    /// Keep the entire subtree below nodes at this position.
    pub keep_all: bool,
    /// Keep text children.
    pub text: bool,
    /// Element children by name.
    pub by_name: FxHashMap<String, usize>,
    /// `*` / `node()` children.
    pub star: Option<usize>,
}

/// Projection tree (arena); node 0 is the binding root.
#[derive(Debug, Clone)]
pub struct Projection {
    pub nodes: Vec<ProjNode>,
}

impl Projection {
    fn new() -> Self {
        Projection {
            nodes: vec![ProjNode::default()],
        }
    }

    fn child_by_name(&mut self, at: usize, name: &str) -> usize {
        if let Some(&c) = self.nodes[at].by_name.get(name) {
            return c;
        }
        let c = self.nodes.len();
        self.nodes.push(ProjNode::default());
        self.nodes[at].by_name.insert(name.to_string(), c);
        c
    }

    fn star_child(&mut self, at: usize) -> usize {
        if let Some(c) = self.nodes[at].star {
            return c;
        }
        let c = self.nodes.len();
        self.nodes.push(ProjNode::default());
        self.nodes[at].star = Some(c);
        c
    }

    /// Follow one step from `positions`; marks whatever the step needs and
    /// returns the resulting positions.
    fn step(&mut self, positions: &[usize], step: &Step) -> Vec<usize> {
        let mut out = Vec::new();
        match step.axis {
            Axis::Descendant => {
                // Conservative: keep everything below; all further navigation
                // is covered.
                for &p in positions {
                    self.nodes[p].keep_all = true;
                    out.push(p);
                }
            }
            Axis::Child => {
                for &p in positions {
                    match &step.test {
                        NodeTest::Name(n) => {
                            let n = n.clone();
                            out.push(self.child_by_name(p, &n));
                        }
                        NodeTest::AnyElem => out.push(self.star_child(p)),
                        NodeTest::AnyNode => {
                            self.nodes[p].text = true;
                            out.push(self.star_child(p));
                        }
                        NodeTest::Text => {
                            self.nodes[p].text = true;
                            // Text nodes have no children; no new position.
                        }
                    }
                }
            }
            Axis::FollowingSibling => {
                // Rejected earlier by the engine (GCX does not support it).
                unreachable!("following-sibling reaches projection builder")
            }
        }
        for pred in &step.preds {
            self.mark_pred(&out_or(positions, &out, step), pred);
        }
        out
    }

    /// Mark the nodes a predicate needs (public for the engine, which
    /// strips binding predicates off the path before projection).
    pub fn mark_pred_public(&mut self, positions: &[usize], pred: &Pred) {
        self.mark_pred(positions, pred);
    }

    fn mark_pred(&mut self, positions: &[usize], pred: &Pred) {
        let (rel, needs_text) = match pred {
            Pred::Exists(r) | Pred::Empty(r) => (r, false),
            Pred::Eq(r, _) | Pred::Neq(r, _) => (r, true),
        };
        let mut pos = positions.to_vec();
        for s in &rel.steps {
            pos = self.step(&pos, s);
        }
        if needs_text {
            for &p in &pos {
                self.nodes[p].text = true;
            }
        }
    }

    /// Mark positions as output-used: the full subtree is needed.
    fn mark_output(&mut self, positions: &[usize]) {
        for &p in positions {
            self.nodes[p].keep_all = true;
        }
    }
}

fn out_or<'v>(prev: &'v [usize], next: &'v [usize], step: &Step) -> Vec<usize> {
    // Predicates qualify the nodes *matched by* the step; for text() steps
    // there is no projection node, so they qualify nothing further.
    if matches!(step.test, NodeTest::Text) {
        let _ = prev;
        Vec::new()
    } else {
        next.to_vec()
    }
}

/// Build the projection a slot body needs below its binding variable.
pub fn build_projection(var: &str, body: &Query) -> Projection {
    let mut proj = Projection::new();
    let mut env: Vec<(String, Vec<usize>)> = vec![(var.to_string(), vec![0])];
    walk(&mut proj, &mut env, body, true);
    proj
}

fn walk(proj: &mut Projection, env: &mut Vec<(String, Vec<usize>)>, q: &Query, output: bool) {
    match q {
        Query::Text(_) => {}
        Query::Element { content, .. } => {
            for c in content {
                walk(proj, env, c, true);
            }
        }
        Query::Seq(items) => {
            for c in items {
                walk(proj, env, c, output);
            }
        }
        Query::Path(p) => {
            let Some(base) = lookup(env, &p.start) else {
                return;
            };
            if p.steps.is_empty() {
                // Bare variable output: whole candidate subtree needed.
                let base = base.clone();
                proj.mark_output(&base);
                return;
            }
            let mut pos = base.clone();
            let mut text_out = false;
            for s in &p.steps {
                text_out = matches!(s.test, NodeTest::Text);
                pos = proj.step(&pos, s);
            }
            if output && !text_out {
                proj.mark_output(&pos);
            }
            // text() outputs are covered by the `text` flag set in `step`.
        }
        Query::For { var, path, body } => {
            let positions = match lookup(env, &path.start) {
                Some(base) => {
                    let mut pos = base.clone();
                    for s in &path.steps {
                        pos = proj.step(&pos, s);
                    }
                    pos
                }
                None => Vec::new(),
            };
            env.push((var.clone(), positions));
            walk(proj, env, body, output);
            env.pop();
        }
        Query::Let { var, value, body } => {
            // The let value is (potentially) emitted: mark as output.
            walk(proj, env, value, true);
            let positions = match value.as_ref() {
                Query::Path(p) => match lookup(env, &p.start) {
                    Some(base) => {
                        // Re-walk without marking output to obtain positions.
                        let mut pos = base.clone();
                        for s in &p.steps {
                            pos = proj.step(&pos, s);
                        }
                        pos
                    }
                    None => Vec::new(),
                },
                _ => Vec::new(),
            };
            env.push((var.clone(), positions));
            walk(proj, env, body, output);
            env.pop();
        }
    }
}

fn lookup<'e>(env: &'e [(String, Vec<usize>)], var: &str) -> Option<&'e Vec<usize>> {
    env.iter().rev().find(|(n, _)| n == var).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_xquery::parse_query;

    fn proj_for(body_src: &str) -> Projection {
        // Wrap as a for over $input/x so $v is bound.
        let q = parse_query(&format!("for $v in $input/x return {body_src}")).unwrap();
        let Query::For { var, body, .. } = q else {
            panic!()
        };
        build_projection(&var, &body)
    }

    #[test]
    fn name_paths_project_narrowly() {
        let p = proj_for("<o>{$v/name/text()}</o>");
        // root → name (with text flag), nothing else.
        assert!(!p.nodes[0].keep_all);
        let name = p.nodes[0].by_name["name"];
        assert!(p.nodes[name].text);
        assert!(!p.nodes[name].keep_all);
        assert!(p.nodes[0].by_name.len() == 1 && p.nodes[0].star.is_none());
    }

    #[test]
    fn bare_variable_keeps_everything() {
        let p = proj_for("<o>{$v}</o>");
        assert!(p.nodes[0].keep_all);
    }

    #[test]
    fn element_path_output_keeps_subtree() {
        let p = proj_for("<o>{$v/description}</o>");
        let d = p.nodes[0].by_name["description"];
        assert!(p.nodes[d].keep_all);
    }

    #[test]
    fn descendant_keeps_region() {
        let p = proj_for("<o>{$v/a//k}</o>");
        let a = p.nodes[0].by_name["a"];
        assert!(p.nodes[a].keep_all);
    }

    #[test]
    fn nested_for_extends_projection() {
        let p = proj_for("<o>{ for $y in $v/b return $y/c/text() }</o>");
        let b = p.nodes[0].by_name["b"];
        let c = p.nodes[b].by_name["c"];
        assert!(p.nodes[c].text);
        assert!(!p.nodes[0].keep_all && !p.nodes[b].keep_all);
    }

    #[test]
    fn predicates_mark_their_paths() {
        let q = parse_query(r#"for $v in $input/x[./id/text()="1"] return <hit/>"#).unwrap();
        let Query::For { var, path, body } = q else {
            panic!()
        };
        let mut p = build_projection(&var, &body);
        // The engine marks binding predicates explicitly:
        for pred in &path.steps.last().unwrap().preds {
            p.mark_pred(&[0], pred);
        }
        let id = p.nodes[0].by_name["id"];
        assert!(p.nodes[id].text);
    }
}
