//! Parallel batch evaluation: M documents × N queries across scoped threads.
//!
//! Documents are independent units of work, so the driver shards *documents*
//! across `std::thread::scope` workers (no extra dependencies, no `'static`
//! bounds); within one document all N queries share a single pass of the
//! event stream via [`crate::MultiQueryEngine`]. Work is claimed from an
//! atomic counter, but results are written back by document index, so the
//! report is **deterministic**: byte-for-byte identical whatever the thread
//! count or scheduling (proven by `tests/service.rs`).

use crate::multi::run_multi_with_limits;
use crate::prepared::PreparedQuery;
use foxq_core::stream::{StreamLimits, StreamStats};
use foxq_xml::{WriterSink, XmlReader};
use std::io::BufRead;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One (document, query) cell of a batch report.
#[derive(Debug, Clone)]
pub struct BatchCell {
    /// Serialized XML output, or the per-query error message.
    pub output: Result<String, String>,
    /// Engine statistics; present exactly when the cell succeeded.
    pub stats: Option<StreamStats>,
}

/// Aggregate outcome of [`BatchDriver::run`].
#[derive(Debug)]
pub struct BatchReport {
    /// `cells[d][q]` is document `d` evaluated under query `q`, in the
    /// order both were supplied.
    pub cells: Vec<Vec<BatchCell>>,
    /// Input events consumed, summed over successfully parsed documents
    /// (each parsed once regardless of the query count, and counted even
    /// when every query of the document failed). Documents whose parse
    /// aborted (malformed XML, unreadable file) contribute 0.
    pub input_events: u64,
    /// Output events pushed, summed over all successful cells.
    pub output_events: u64,
    /// Cells that ended in an error.
    pub failures: usize,
}

impl BatchReport {
    /// Convenience accessor: the output of document `d` under query `q`.
    pub fn output(&self, d: usize, q: usize) -> &Result<String, String> {
        &self.cells[d][q].output
    }
}

/// Evaluate documents × queries across a bounded pool of scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct BatchDriver {
    threads: usize,
    limits: StreamLimits,
}

impl BatchDriver {
    /// A driver using up to `threads` worker threads (min 1), under the
    /// serving stream limits ([`StreamLimits::serving`]): batches run
    /// *prepared* — possibly untrusted — queries, so no lane may emit
    /// unbounded output by default.
    pub fn new(threads: usize) -> Self {
        BatchDriver {
            threads: threads.max(1),
            limits: StreamLimits::serving(),
        }
    }

    /// Override the per-engine stream limits.
    pub fn with_limits(mut self, limits: StreamLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every query over every in-memory document; one parse per
    /// document.
    pub fn run(&self, docs: &[Vec<u8>], queries: &[Arc<PreparedQuery>]) -> BatchReport {
        self.run_with(docs.len(), |d| {
            run_one_doc(&docs[d][..], queries, self.limits)
        })
    }

    /// Run every query over every document *file*, opened and streamed by
    /// the worker that claims it — peak memory stays O(threads × buffer),
    /// not O(total corpus), whatever the batch size.
    pub fn run_files(
        &self,
        paths: &[impl AsRef<Path> + Sync],
        queries: &[Arc<PreparedQuery>],
    ) -> BatchReport {
        self.run_with(paths.len(), |d| {
            match std::fs::File::open(paths[d].as_ref()) {
                Ok(file) => run_one_doc(std::io::BufReader::new(file), queries, self.limits),
                Err(e) => DocRow {
                    cells: all_cells_failed(
                        &format!("cannot open {}: {e}", paths[d].as_ref().display()),
                        queries,
                    ),
                    input_events: 0,
                },
            }
        })
    }

    /// Shared scheduling core: shard `count` document indices across the
    /// workers, writing rows back by index (deterministic whatever the
    /// thread scheduling).
    fn run_with(&self, count: usize, job: impl Fn(usize) -> DocRow + Sync) -> BatchReport {
        let mut rows: Vec<Option<DocRow>> = (0..count).map(|_| None).collect();
        let workers = self.threads.min(count).max(1);
        if workers <= 1 {
            for (d, row) in rows.iter_mut().enumerate() {
                *row = Some(job(d));
            }
        } else {
            let next = AtomicUsize::new(0);
            let job = &job;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut produced = Vec::new();
                            loop {
                                let d = next.fetch_add(1, Ordering::Relaxed);
                                if d >= count {
                                    return produced;
                                }
                                produced.push((d, job(d)));
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    for (d, row) in handle.join().expect("batch worker panicked") {
                        rows[d] = Some(row);
                    }
                }
            });
        }
        let mut report = BatchReport {
            cells: Vec::with_capacity(count),
            input_events: 0,
            output_events: 0,
            failures: 0,
        };
        for row in rows {
            let row = row.expect("every document processed");
            report.input_events += row.input_events;
            for cell in &row.cells {
                match (&cell.output, cell.stats) {
                    (Ok(_), Some(stats)) => report.output_events += stats.output_events,
                    _ => report.failures += 1,
                }
            }
            report.cells.push(row.cells);
        }
        report
    }
}

/// One document's worth of results plus its shared parse cost.
struct DocRow {
    cells: Vec<BatchCell>,
    input_events: u64,
}

/// All queries over one readable document, single pass.
fn run_one_doc<R: BufRead>(
    reader: R,
    queries: &[Arc<PreparedQuery>],
    limits: StreamLimits,
) -> DocRow {
    let mfts: Vec<_> = queries.iter().map(|q| q.mft()).collect();
    let sinks: Vec<_> = queries
        .iter()
        .map(|_| WriterSink::new(Vec::new()))
        .collect();
    match run_multi_with_limits(&mfts, XmlReader::new(reader), sinks, limits) {
        Ok(run) => DocRow {
            cells: run
                .results
                .into_iter()
                .map(|r| match r {
                    Ok((sink, stats)) => match sink.finish() {
                        Ok(buf) => BatchCell {
                            output: Ok(String::from_utf8(buf).expect("output is UTF-8")),
                            stats: Some(stats),
                        },
                        Err(e) => BatchCell {
                            output: Err(e.to_string()),
                            stats: None,
                        },
                    },
                    Err(e) => BatchCell {
                        output: Err(e.to_string()),
                        stats: None,
                    },
                })
                .collect(),
            input_events: run.input_events,
        },
        // Malformed input fails every cell of this document.
        Err(e) => DocRow {
            cells: all_cells_failed(&e.to_string(), queries),
            input_events: 0,
        },
    }
}

fn all_cells_failed(msg: &str, queries: &[Arc<PreparedQuery>]) -> Vec<BatchCell> {
    queries
        .iter()
        .map(|_| BatchCell {
            output: Err(msg.to_string()),
            stats: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared(src: &str) -> Arc<PreparedQuery> {
        Arc::new(PreparedQuery::compile(src).unwrap())
    }

    fn docs() -> Vec<Vec<u8>> {
        (0..7)
            .map(|i| format!("<r><a>{i}</a><b x=\"{i}\"/></r>").into_bytes())
            .collect()
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let queries = vec![
            prepared("<o>{$input/r/a}</o>"),
            prepared("<o>{$input//b}</o>"),
        ];
        let serial = BatchDriver::new(1).run(&docs(), &queries);
        let parallel = BatchDriver::new(4).run(&docs(), &queries);
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            for (sc, pc) in s.iter().zip(p) {
                assert_eq!(sc.output, pc.output);
            }
        }
        assert_eq!(serial.failures, 0);
        assert_eq!(serial.output(0, 0).as_ref().unwrap(), "<o><a>0</a></o>");
    }

    #[test]
    fn malformed_document_fails_only_its_row() {
        let queries = vec![prepared("<o>{$input/r/a}</o>")];
        let mut ds = docs();
        ds[1] = b"<r><unclosed>".to_vec();
        let report = BatchDriver::new(3).run(&ds, &queries);
        assert_eq!(report.failures, 1);
        assert!(report.output(1, 0).is_err());
        assert!(report.output(0, 0).is_ok());
        assert!(report.output(2, 0).is_ok());
    }

    #[test]
    fn run_files_streams_each_document_lazily() {
        let dir = std::env::temp_dir().join(format!("foxq-batch-files-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for (i, doc) in docs().iter().enumerate() {
            let p = dir.join(format!("d{i}.xml"));
            std::fs::write(&p, doc).unwrap();
            paths.push(p);
        }
        paths.push(dir.join("missing.xml")); // unreadable: fails its row only
        let queries = vec![prepared("<o>{$input/r/a}</o>")];
        let report = BatchDriver::new(3).run_files(&paths, &queries);
        assert_eq!(report.failures, 1);
        assert!(report.output(paths.len() - 1, 0).is_err());
        // Identical to the in-memory driver on the same documents.
        let in_memory = BatchDriver::new(1).run(&docs(), &queries);
        for (d, row) in in_memory.cells.iter().enumerate() {
            assert_eq!(&row[0].output, report.output(d, 0));
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let report = BatchDriver::new(4).run(&[], &[prepared("<o>{$input/a}</o>")]);
        assert!(report.cells.is_empty());
        let report = BatchDriver::new(4).run(&[b"<a/>".to_vec()], &[]);
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0].is_empty());
    }
}
