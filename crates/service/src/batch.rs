//! Parallel batch evaluation: M documents × N queries across scoped threads.
//!
//! Documents are independent units of work, so the driver shards *documents*
//! across `std::thread::scope` workers (no extra dependencies, no `'static`
//! bounds); within one document all N queries share a single pass of the
//! event stream via [`crate::MultiQueryEngine`]. Work is claimed from an
//! atomic counter, but results are written back by document index, so the
//! report is **deterministic**: byte-for-byte identical whatever the thread
//! count or scheduling (proven by `tests/service.rs`).

use crate::multi::{run_multi_on_tape, run_multi_with_plan, QuerySetPlan};
use crate::prepared::PreparedQuery;
use foxq_core::stream::{StreamLimits, StreamStats};
use foxq_core::Mft;
use foxq_store::Corpus;
use foxq_xml::{WriterSink, XmlReader};
use std::io::BufRead;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One (document, query) cell of a batch report.
#[derive(Debug, Clone)]
pub struct BatchCell {
    /// Serialized XML output, or the per-query error message.
    pub output: Result<String, String>,
    /// Engine statistics; present exactly when the cell succeeded.
    pub stats: Option<StreamStats>,
}

/// Aggregate outcome of [`BatchDriver::run`].
#[derive(Debug)]
pub struct BatchReport {
    /// `cells[d][q]` is document `d` evaluated under query `q`, in the
    /// order both were supplied.
    pub cells: Vec<Vec<BatchCell>>,
    /// Input events consumed, summed over successfully parsed documents
    /// (each parsed once regardless of the query count, and counted even
    /// when every query of the document failed). Documents whose parse
    /// aborted (malformed XML, unreadable file) contribute 0.
    pub input_events: u64,
    /// Output events pushed, summed over all successful cells.
    pub output_events: u64,
    /// Tape bytes seeked over instead of decoded, summed over documents.
    /// Nonzero only for [`BatchDriver::run_corpus`] (XML text cannot be
    /// skipped without being scanned).
    pub seek_skipped_bytes: u64,
    /// Tape bytes the label skip index jumped over without decoding,
    /// summed over documents. Nonzero only for
    /// [`BatchDriver::run_corpus`] over FET2 tapes when the whole query
    /// set prefilters.
    pub index_skipped_bytes: u64,
    /// Cells that ended in an error.
    pub failures: usize,
}

impl BatchReport {
    /// Convenience accessor: the output of document `d` under query `q`.
    pub fn output(&self, d: usize, q: usize) -> &Result<String, String> {
        &self.cells[d][q].output
    }
}

/// Evaluate documents × queries across a bounded pool of scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct BatchDriver {
    threads: usize,
    limits: StreamLimits,
}

impl BatchDriver {
    /// A driver using up to `threads` worker threads (min 1), under the
    /// serving stream limits ([`StreamLimits::serving`]): batches run
    /// *prepared* — possibly untrusted — queries, so no lane may emit
    /// unbounded output by default.
    pub fn new(threads: usize) -> Self {
        BatchDriver {
            threads: threads.max(1),
            limits: StreamLimits::serving(),
        }
    }

    /// Override the per-engine stream limits.
    pub fn with_limits(mut self, limits: StreamLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every query over every in-memory document; one parse per
    /// document. The prefilter plan is computed once for the query set and
    /// shared by every document and worker thread.
    pub fn run(&self, docs: &[Vec<u8>], queries: &[Arc<PreparedQuery>]) -> BatchReport {
        let plan = plan_of(queries);
        self.run_with(docs.len(), |d| {
            run_one_doc(&docs[d][..], queries, self.limits, &plan)
        })
    }

    /// Run every query over every document *file*, opened and streamed by
    /// the worker that claims it — peak memory stays O(threads × buffer),
    /// not O(total corpus), whatever the batch size.
    pub fn run_files(
        &self,
        paths: &[impl AsRef<Path> + Sync],
        queries: &[Arc<PreparedQuery>],
    ) -> BatchReport {
        let plan = plan_of(queries);
        self.run_with(paths.len(), |d| {
            match std::fs::File::open(paths[d].as_ref()) {
                Ok(file) => run_one_doc(std::io::BufReader::new(file), queries, self.limits, &plan),
                Err(e) => DocRow::failed(
                    &format!("cannot open {}: {e}", paths[d].as_ref().display()),
                    queries,
                ),
            }
        })
    }

    /// Run one compiled query set over **every stored document** of a
    /// [`Corpus`] (or the ids in `subset`, in the given order), replaying
    /// tapes instead of re-parsing XML and seeking over prefilter-withheld
    /// subtrees. Rows are keyed by position in the returned
    /// [`CorpusReport::doc_ids`]; the report is deterministic whatever the
    /// thread count.
    pub fn run_corpus(&self, corpus: &Corpus, queries: &[Arc<PreparedQuery>]) -> CorpusReport {
        let ids: Vec<String> = corpus.ids().map(String::from).collect();
        self.run_corpus_subset(corpus, ids, queries)
    }

    /// [`BatchDriver::run_corpus`] over an explicit id list.
    pub fn run_corpus_subset(
        &self,
        corpus: &Corpus,
        doc_ids: Vec<String>,
        queries: &[Arc<PreparedQuery>],
    ) -> CorpusReport {
        let plan = plan_of(queries);
        let report = self.run_with(doc_ids.len(), |d| match corpus.open_tape(&doc_ids[d]) {
            Ok(tape) => run_one_tape(tape, queries, self.limits, &plan),
            Err(e) => DocRow::failed(&e.to_string(), queries),
        });
        CorpusReport { doc_ids, report }
    }

    /// Shared scheduling core: shard `count` document indices across the
    /// workers, writing rows back by index (deterministic whatever the
    /// thread scheduling).
    fn run_with(&self, count: usize, job: impl Fn(usize) -> DocRow + Sync) -> BatchReport {
        let mut rows: Vec<Option<DocRow>> = (0..count).map(|_| None).collect();
        let workers = self.threads.min(count).max(1);
        if workers <= 1 {
            for (d, row) in rows.iter_mut().enumerate() {
                *row = Some(job(d));
            }
        } else {
            let next = AtomicUsize::new(0);
            let job = &job;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut produced = Vec::new();
                            loop {
                                let d = next.fetch_add(1, Ordering::Relaxed);
                                if d >= count {
                                    return produced;
                                }
                                produced.push((d, job(d)));
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    for (d, row) in handle.join().expect("batch worker panicked") {
                        rows[d] = Some(row);
                    }
                }
            });
        }
        let mut report = BatchReport {
            cells: Vec::with_capacity(count),
            input_events: 0,
            output_events: 0,
            seek_skipped_bytes: 0,
            index_skipped_bytes: 0,
            failures: 0,
        };
        for row in rows {
            let row = row.expect("every document processed");
            report.input_events += row.input_events;
            report.seek_skipped_bytes += row.seek_skipped_bytes;
            report.index_skipped_bytes += row.index_skipped_bytes;
            for cell in &row.cells {
                match (&cell.output, cell.stats) {
                    (Ok(_), Some(stats)) => report.output_events += stats.output_events,
                    _ => report.failures += 1,
                }
            }
            report.cells.push(row.cells);
        }
        report
    }
}

/// A corpus batch: [`BatchReport`] rows aligned with the stored ids.
#[derive(Debug)]
pub struct CorpusReport {
    /// Document ids, in row order (`report.cells[d]` is `doc_ids[d]`).
    pub doc_ids: Vec<String>,
    /// The per-cell outcomes.
    pub report: BatchReport,
}

/// One document's worth of results plus its shared parse cost.
struct DocRow {
    cells: Vec<BatchCell>,
    input_events: u64,
    seek_skipped_bytes: u64,
    index_skipped_bytes: u64,
}

impl DocRow {
    /// Every cell of this document failed with `msg` (unreadable file,
    /// malformed XML, corrupt tape).
    fn failed(msg: &str, queries: &[Arc<PreparedQuery>]) -> DocRow {
        DocRow {
            cells: queries
                .iter()
                .map(|_| BatchCell {
                    output: Err(msg.to_string()),
                    stats: None,
                })
                .collect(),
            input_events: 0,
            seek_skipped_bytes: 0,
            index_skipped_bytes: 0,
        }
    }

    fn from_run(run: crate::multi::MultiRun<WriterSink<Vec<u8>>>) -> DocRow {
        DocRow {
            cells: run
                .results
                .into_iter()
                .map(|r| match r {
                    Ok((sink, stats)) => match sink.finish() {
                        Ok(buf) => BatchCell {
                            output: Ok(String::from_utf8(buf).expect("output is UTF-8")),
                            stats: Some(stats),
                        },
                        Err(e) => BatchCell {
                            output: Err(e.to_string()),
                            stats: None,
                        },
                    },
                    Err(e) => BatchCell {
                        output: Err(e.to_string()),
                        stats: None,
                    },
                })
                .collect(),
            input_events: run.input_events,
            seek_skipped_bytes: run.seek_skipped_bytes,
            index_skipped_bytes: run.index_skipped_bytes,
        }
    }
}

/// Compute the shared prefilter plan of a query set once per batch.
fn plan_of(queries: &[Arc<PreparedQuery>]) -> QuerySetPlan {
    QuerySetPlan::new(queries.iter().map(|q| q.mft()))
}

fn sinks_for(queries: &[Arc<PreparedQuery>]) -> Vec<WriterSink<Vec<u8>>> {
    queries
        .iter()
        .map(|_| WriterSink::new(Vec::new()))
        .collect()
}

/// All queries over one readable document, single pass.
fn run_one_doc<R: BufRead>(
    reader: R,
    queries: &[Arc<PreparedQuery>],
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> DocRow {
    let mfts: Vec<&Mft> = queries.iter().map(|q| q.mft()).collect();
    match run_multi_with_plan(
        &mfts,
        XmlReader::new(reader),
        sinks_for(queries),
        limits,
        plan,
    ) {
        Ok(run) => DocRow::from_run(run),
        // Malformed input fails every cell of this document.
        Err(e) => DocRow::failed(&e.to_string(), queries),
    }
}

/// All queries over one stored tape, single replay with seek skipping.
fn run_one_tape<R: BufRead + std::io::Seek>(
    tape: foxq_store::TapeReader<R>,
    queries: &[Arc<PreparedQuery>],
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> DocRow {
    let mfts: Vec<&Mft> = queries.iter().map(|q| q.mft()).collect();
    match run_multi_on_tape(&mfts, tape, sinks_for(queries), limits, plan) {
        Ok(run) => DocRow::from_run(run),
        // A corrupt or unreadable tape fails every cell of this document.
        Err(e) => DocRow::failed(&e.to_string(), queries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared(src: &str) -> Arc<PreparedQuery> {
        Arc::new(PreparedQuery::compile(src).unwrap())
    }

    fn docs() -> Vec<Vec<u8>> {
        (0..7)
            .map(|i| format!("<r><a>{i}</a><b x=\"{i}\"/></r>").into_bytes())
            .collect()
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let queries = vec![
            prepared("<o>{$input/r/a}</o>"),
            prepared("<o>{$input//b}</o>"),
        ];
        let serial = BatchDriver::new(1).run(&docs(), &queries);
        let parallel = BatchDriver::new(4).run(&docs(), &queries);
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            for (sc, pc) in s.iter().zip(p) {
                assert_eq!(sc.output, pc.output);
            }
        }
        assert_eq!(serial.failures, 0);
        assert_eq!(serial.output(0, 0).as_ref().unwrap(), "<o><a>0</a></o>");
    }

    #[test]
    fn malformed_document_fails_only_its_row() {
        let queries = vec![prepared("<o>{$input/r/a}</o>")];
        let mut ds = docs();
        ds[1] = b"<r><unclosed>".to_vec();
        let report = BatchDriver::new(3).run(&ds, &queries);
        assert_eq!(report.failures, 1);
        assert!(report.output(1, 0).is_err());
        assert!(report.output(0, 0).is_ok());
        assert!(report.output(2, 0).is_ok());
    }

    #[test]
    fn run_files_streams_each_document_lazily() {
        let dir = std::env::temp_dir().join(format!("foxq-batch-files-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for (i, doc) in docs().iter().enumerate() {
            let p = dir.join(format!("d{i}.xml"));
            std::fs::write(&p, doc).unwrap();
            paths.push(p);
        }
        paths.push(dir.join("missing.xml")); // unreadable: fails its row only
        let queries = vec![prepared("<o>{$input/r/a}</o>")];
        let report = BatchDriver::new(3).run_files(&paths, &queries);
        assert_eq!(report.failures, 1);
        assert!(report.output(paths.len() - 1, 0).is_err());
        // Identical to the in-memory driver on the same documents.
        let in_memory = BatchDriver::new(1).run(&docs(), &queries);
        for (d, row) in in_memory.cells.iter().enumerate() {
            assert_eq!(&row[0].output, report.output(d, 0));
        }
    }

    #[test]
    fn run_corpus_replays_tapes_and_seeks() {
        let dir = std::env::temp_dir().join(format!("foxq-batch-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut corpus = foxq_store::Corpus::open(&dir).unwrap();
        for i in 0..5 {
            let xml = format!(
                "<site><junk><big><blob>padding {i}</blob></big></junk>\
                 <people><person><name>p{i}</name></person></people></site>"
            );
            corpus.add_xml(&format!("doc{i}"), xml.as_bytes()).unwrap();
        }
        let queries = vec![prepared("<o>{$input/site/people/person/name/text()}</o>")];
        let serial = BatchDriver::new(1).run_corpus(&corpus, &queries);
        let parallel = BatchDriver::new(3).run_corpus(&corpus, &queries);
        assert_eq!(serial.doc_ids, parallel.doc_ids);
        assert_eq!(serial.report.failures, 0);
        // New ingests are FET2 and the query set prefilters wholesale, so
        // the corpus run rides the skip index, not per-subtree seeks.
        assert!(
            serial.report.index_skipped_bytes > 0,
            "no bytes were index-skipped"
        );
        assert_eq!(serial.report.seek_skipped_bytes, 0);
        assert_eq!(
            serial.report.index_skipped_bytes,
            parallel.report.index_skipped_bytes
        );
        for (d, id) in serial.doc_ids.iter().enumerate() {
            let i = id.strip_prefix("doc").unwrap();
            assert_eq!(
                serial.report.output(d, 0).as_ref().unwrap(),
                &format!("<o>p{i}</o>")
            );
            assert_eq!(serial.report.output(d, 0), parallel.report.output(d, 0));
        }
        // Subset runs honor the given order.
        let subset = BatchDriver::new(2).run_corpus_subset(
            &corpus,
            vec!["doc3".into(), "doc1".into()],
            &queries,
        );
        assert_eq!(subset.doc_ids, vec!["doc3", "doc1"]);
        assert_eq!(subset.report.output(0, 0).as_ref().unwrap(), "<o>p3</o>");
        // Unknown ids fail their row only.
        let missing = BatchDriver::new(1).run_corpus_subset(
            &corpus,
            vec!["doc0".into(), "nope".into()],
            &queries,
        );
        assert_eq!(missing.report.failures, 1);
        assert!(missing.report.output(1, 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batches_are_fine() {
        let report = BatchDriver::new(4).run(&[], &[prepared("<o>{$input/a}</o>")]);
        assert!(report.cells.is_empty());
        let report = BatchDriver::new(4).run(&[b"<a/>".to_vec()], &[]);
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0].is_empty());
    }
}
