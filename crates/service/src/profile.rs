//! Per-query profile registry: the planner's calibration store.
//!
//! [`ProfileRegistry`] accumulates one [`QueryProfile`] per prepared
//! query (keyed by [`crate::prepared::source_key`], the same hash the
//! [`crate::QueryCache`] uses), folding every profiled run into EWMA +
//! max aggregates of events, buffer peaks, allocator bytes, and
//! execute time. The streamability planner (ROADMAP item 4) will read
//! these to calibrate its memory/cost predictions; today the registry
//! powers `GET /debug/profile` and the profile records in the trace
//! log.

use foxq_core::profile::{sparkline, StreamProfile, TimelinePoint};
use foxq_forest::FxHashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// EWMA smoothing factor: each new run contributes 20%.
pub const PROFILE_EWMA_ALPHA: f64 = 0.2;

/// Hot-state rows kept per query (merged by state name across runs).
const MAX_HOT_STATES: usize = 16;

/// One tracked quantity: exponentially weighted moving average plus
/// all-time maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Aggregate {
    /// EWMA over profiled runs (α = [`PROFILE_EWMA_ALPHA`]).
    pub ewma: f64,
    /// Maximum over profiled runs.
    pub max: u64,
}

impl Aggregate {
    fn record(&mut self, value: u64, first_run: bool) {
        if first_run {
            self.ewma = value as f64;
        } else {
            self.ewma += PROFILE_EWMA_ALPHA * (value as f64 - self.ewma);
        }
        self.max = self.max.max(value);
    }
}

/// A hot-state row aggregated across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotState {
    /// MFT state name.
    pub state: String,
    /// Total expansions attributed across profiled runs.
    pub expansions: u64,
    /// Total output events attributed across profiled runs.
    pub output_events: u64,
}

/// One profiled run's measurements, as fed to
/// [`ProfileRegistry::record`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunSample {
    /// Input events the run consumed.
    pub input_events: u64,
    /// Output events the run emitted.
    pub output_events: u64,
    /// Run peak of live expression nodes.
    pub peak_live_nodes: u64,
    /// Run peak of approximate live bytes.
    pub peak_live_bytes: u64,
    /// Run peak of pending state calls.
    pub peak_pending_calls: u64,
    /// Allocator bytes the worker thread billed to the run.
    pub alloc_bytes: u64,
    /// Engine execution wall time in microseconds.
    pub execute_micros: u64,
}

/// Everything the registry knows about one query.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// First line of the query source, truncated for display.
    pub source_preview: String,
    /// Profiled runs folded in.
    pub runs: u64,
    /// Input events per run.
    pub input_events: Aggregate,
    /// Output events per run.
    pub output_events: Aggregate,
    /// Peak live nodes per run.
    pub peak_live_nodes: Aggregate,
    /// Peak live bytes per run.
    pub peak_live_bytes: Aggregate,
    /// Peak pending calls per run.
    pub peak_pending_calls: Aggregate,
    /// Allocator bytes billed per run.
    pub alloc_bytes: Aggregate,
    /// Execute wall micros per run.
    pub execute_micros: Aggregate,
    /// Hot-state table, merged by name, most expansions first.
    pub hot_states: Vec<HotState>,
    /// The most recent run's buffer timeline.
    pub timeline: Vec<TimelinePoint>,
    /// Input events per timeline point (of the most recent run).
    pub events_per_point: u64,
    /// LRU tick (bigger = more recently used).
    last_used: u64,
}

impl QueryProfile {
    fn fold(&mut self, sample: &RunSample, profile: Option<&StreamProfile>) {
        let first = self.runs == 0;
        self.runs += 1;
        self.input_events.record(sample.input_events, first);
        self.output_events.record(sample.output_events, first);
        self.peak_live_nodes.record(sample.peak_live_nodes, first);
        self.peak_live_bytes.record(sample.peak_live_bytes, first);
        self.peak_pending_calls
            .record(sample.peak_pending_calls, first);
        self.alloc_bytes.record(sample.alloc_bytes, first);
        self.execute_micros.record(sample.execute_micros, first);
        if let Some(profile) = profile {
            for state in &profile.states {
                match self.hot_states.iter_mut().find(|h| h.state == state.state) {
                    Some(h) => {
                        h.expansions += state.expansions;
                        h.output_events += state.output_events;
                    }
                    None => self.hot_states.push(HotState {
                        state: state.state.clone(),
                        expansions: state.expansions,
                        output_events: state.output_events,
                    }),
                }
            }
            self.hot_states.sort_by(|a, b| {
                b.expansions
                    .cmp(&a.expansions)
                    .then_with(|| a.state.cmp(&b.state))
            });
            self.hot_states.truncate(MAX_HOT_STATES);
            self.timeline = profile.timeline.clone();
            self.events_per_point = profile.events_per_point;
        }
    }
}

/// Bounded, thread-safe map of per-query profiles. Eviction is
/// least-recently-recorded.
pub struct ProfileRegistry {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    tick: u64,
    map: FxHashMap<u64, QueryProfile>,
}

impl ProfileRegistry {
    /// A registry keeping at most `capacity` query profiles.
    pub fn new(capacity: usize) -> ProfileRegistry {
        ProfileRegistry {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fold one profiled run into the query's aggregates. `key` is
    /// [`crate::prepared::source_key`] of the query source; `source` is
    /// the source text (used for the display preview on first sight).
    pub fn record(
        &self,
        key: u64,
        source: &str,
        sample: &RunSample,
        profile: Option<&StreamProfile>,
    ) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some((&evict, _)) = inner.map.iter().min_by_key(|(_, p)| p.last_used) {
                inner.map.remove(&evict);
            }
        }
        let entry = inner.map.entry(key).or_insert_with(|| QueryProfile {
            source_preview: preview(source),
            ..QueryProfile::default()
        });
        entry.last_used = tick;
        entry.fold(sample, profile);
    }

    /// Number of queries currently profiled.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether no runs have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the profile for one query, if present.
    pub fn get(&self, key: u64) -> Option<QueryProfile> {
        self.lock().map.get(&key).cloned()
    }

    /// Snapshot every `(key, profile)`, most recently used first.
    pub fn snapshot(&self) -> Vec<(u64, QueryProfile)> {
        let inner = self.lock();
        let mut all: Vec<(u64, QueryProfile)> =
            inner.map.iter().map(|(&k, p)| (k, p.clone())).collect();
        all.sort_by_key(|(_, p)| std::cmp::Reverse(p.last_used));
        all
    }

    /// Render the registry as the `/debug/profile` text body.
    pub fn render(&self) -> String {
        let all = self.snapshot();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# query profiles: {} (most recently used first, ewma alpha={PROFILE_EWMA_ALPHA})",
            all.len()
        );
        for (key, p) in &all {
            let _ = writeln!(
                out,
                "\nquery {key:016x} runs={} source={:?}",
                p.runs, p.source_preview
            );
            let rows: [(&str, &Aggregate); 7] = [
                ("input_events", &p.input_events),
                ("output_events", &p.output_events),
                ("peak_live_nodes", &p.peak_live_nodes),
                ("peak_live_bytes", &p.peak_live_bytes),
                ("peak_pending_calls", &p.peak_pending_calls),
                ("alloc_bytes", &p.alloc_bytes),
                ("execute_micros", &p.execute_micros),
            ];
            for (name, agg) in rows {
                let _ = writeln!(out, "  {name:<20} ewma={:<14.1} max={}", agg.ewma, agg.max);
            }
            if !p.hot_states.is_empty() {
                let _ = writeln!(out, "  hot states (expansions / output events):");
                for h in &p.hot_states {
                    let _ = writeln!(
                        out,
                        "    {:<24} {:>12} {:>12}",
                        h.state, h.expansions, h.output_events
                    );
                }
            }
            if !p.timeline.is_empty() {
                let _ = writeln!(
                    out,
                    "  buffer timeline, last run ({} events/point):",
                    p.events_per_point
                );
                let _ = writeln!(
                    out,
                    "    bytes   {}",
                    sparkline(p.timeline.iter().map(|t| t.hi_live_bytes))
                );
                let _ = writeln!(
                    out,
                    "    pending {}",
                    sparkline(p.timeline.iter().map(|t| t.hi_pending_calls))
                );
            }
        }
        out
    }
}

/// First line of the source, truncated to a display-safe preview.
fn preview(source: &str) -> String {
    let line = source.trim().lines().next().unwrap_or("");
    let mut p: String = line.chars().take(80).collect();
    if p.len() < line.len() {
        p.push('…');
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(v: u64) -> RunSample {
        RunSample {
            input_events: v,
            output_events: v,
            peak_live_nodes: v,
            peak_live_bytes: v * 100,
            peak_pending_calls: v / 2,
            alloc_bytes: v * 1_000,
            execute_micros: v * 10,
        }
    }

    #[test]
    fn ewma_and_max_fold_across_runs() {
        let reg = ProfileRegistry::new(8);
        reg.record(1, "<o>{$input/a}</o>", &sample(100), None);
        reg.record(1, "<o>{$input/a}</o>", &sample(200), None);
        let p = reg.get(1).unwrap();
        assert_eq!(p.runs, 2);
        // First run seeds the EWMA; second moves it by alpha.
        assert_eq!(p.input_events.ewma, 100.0 + 0.2 * 100.0);
        assert_eq!(p.input_events.max, 200);
        assert_eq!(p.peak_live_bytes.max, 20_000);
        assert!(reg.render().contains("runs=2"));
    }

    #[test]
    fn capacity_evicts_least_recently_recorded() {
        let reg = ProfileRegistry::new(2);
        reg.record(1, "q1", &sample(1), None);
        reg.record(2, "q2", &sample(2), None);
        reg.record(1, "q1", &sample(1), None); // refresh q1
        reg.record(3, "q3", &sample(3), None); // evicts q2
        assert_eq!(reg.len(), 2);
        assert!(reg.get(1).is_some());
        assert!(reg.get(2).is_none());
        assert!(reg.get(3).is_some());
    }

    #[test]
    fn hot_states_merge_by_name() {
        use foxq_core::profile::{StateProfile, StreamProfile};
        let reg = ProfileRegistry::new(4);
        let profile = StreamProfile {
            states: vec![
                StateProfile {
                    state: "q0".into(),
                    expansions: 5,
                    output_events: 2,
                    net_nodes: 0,
                    net_bytes: 0,
                    net_pending: 0,
                },
                StateProfile {
                    state: "q1".into(),
                    expansions: 3,
                    output_events: 0,
                    net_nodes: 0,
                    net_bytes: 0,
                    net_pending: 0,
                },
            ],
            ..StreamProfile::default()
        };
        reg.record(7, "q", &sample(1), Some(&profile));
        reg.record(7, "q", &sample(1), Some(&profile));
        let p = reg.get(7).unwrap();
        assert_eq!(p.hot_states.len(), 2);
        assert_eq!(p.hot_states[0].state, "q0");
        assert_eq!(p.hot_states[0].expansions, 10);
        assert_eq!(p.hot_states[1].expansions, 6);
    }
}
