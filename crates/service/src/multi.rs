//! Multi-query evaluation over a **single pass** of the event stream.
//!
//! The event stream is the scarce resource of a streamed tree-query system:
//! parsing is a full scan of the input, and under serving traffic the same
//! document is typically interrogated by many queries at once. A
//! [`MultiQueryEngine`] holds one `core::stream::Engine` lane per prepared
//! query and fans every `open`/`close` event out to all of them, so N
//! queries are answered with one parse — the reader's event counter does not
//! move as N grows (proven by `tests/service.rs`).
//!
//! Failure is isolated per lane: a query that exhausts its
//! [`StreamLimits`] (a stay-move loop, typically) marks only its own lane
//! failed; the remaining queries keep streaming. Only input-side errors
//! (malformed XML) abort the whole pass, since every lane shares the input.

use foxq_core::mft::Mft;
use foxq_core::stream::{Engine, StreamError, StreamLimits, StreamStats};
use foxq_forest::{Label, Tree};
use foxq_xml::{XmlError, XmlEvent, XmlReader, XmlSink};
use std::io::BufRead;

/// One query's lane inside the fan-out.
enum Lane<'m, S> {
    Running(Engine<'m, S>),
    Failed(StreamError),
}

/// Fan one event stream out to N streaming engines.
pub struct MultiQueryEngine<'m, S> {
    lanes: Vec<Lane<'m, S>>,
    running: usize,
    input_events: u64,
}

impl<'m, S: XmlSink> MultiQueryEngine<'m, S> {
    /// One lane per `(mft, sink)` pair, with default limits.
    pub fn new(queries: impl IntoIterator<Item = (&'m Mft, S)>) -> Self {
        Self::with_limits(queries, StreamLimits::default())
    }

    /// One lane per `(mft, sink)` pair, sharing `limits`.
    pub fn with_limits(
        queries: impl IntoIterator<Item = (&'m Mft, S)>,
        limits: StreamLimits,
    ) -> Self {
        let lanes: Vec<Lane<'m, S>> = queries
            .into_iter()
            .map(|(mft, sink)| Lane::Running(Engine::with_limits(mft, sink, limits)))
            .collect();
        MultiQueryEngine {
            running: lanes.len(),
            lanes,
            input_events: 0,
        }
    }

    /// Number of lanes (queries).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Lanes that have not failed.
    pub fn running(&self) -> usize {
        self.running
    }

    /// Open/close events fed so far, each counted once (not once per lane);
    /// matches [`XmlReader::events_read`] when driven from a reader. The
    /// end-of-input tick is not counted — drivers add it when reporting.
    pub fn input_events(&self) -> u64 {
        self.input_events
    }

    fn each_running(&mut self, mut f: impl FnMut(&mut Engine<'m, S>) -> Result<(), StreamError>) {
        for lane in &mut self.lanes {
            if let Lane::Running(engine) = lane {
                if let Err(e) = f(engine) {
                    *lane = Lane::Failed(e);
                    self.running -= 1;
                }
            }
        }
    }

    /// Feed an opening event (element or text node) to every live lane.
    pub fn open(&mut self, label: &Label) {
        self.input_events += 1;
        self.each_running(|e| e.open(label));
    }

    /// Feed the matching closing event to every live lane.
    pub fn close(&mut self) {
        self.input_events += 1;
        self.each_running(|e| e.close());
    }

    /// Signal end of input; collect each lane's sink and statistics.
    pub fn finish(mut self) -> Vec<Result<(S, StreamStats), StreamError>> {
        self.lanes
            .drain(..)
            .map(|lane| match lane {
                Lane::Running(engine) => engine.finish(),
                Lane::Failed(e) => Err(e),
            })
            .collect()
    }
}

/// Result of [`run_multi`]: per-query outcomes plus the shared input cost.
pub struct MultiRun<S> {
    /// One result per query, in input order. Per-query failures (e.g. fuel
    /// exhaustion) appear here; they do not abort the other queries.
    pub results: Vec<Result<(S, StreamStats), StreamError>>,
    /// Events consumed from the (single) reader pass, including the
    /// end-of-input tick — equals each successful lane's `stats.events`.
    pub input_events: u64,
}

/// Run N transducers over one pass of an XML byte stream.
///
/// Input-side XML errors fail the whole run (every lane reads the same
/// stream); engine-side errors are isolated per query. Once *every* lane
/// has failed the rest of the input is not read (so the tail is no longer
/// checked for well-formedness) — `input_events` then reflects the events
/// consumed up to the abort.
pub fn run_multi<R: BufRead, S: XmlSink>(
    mfts: &[&Mft],
    reader: XmlReader<R>,
    sinks: Vec<S>,
) -> Result<MultiRun<S>, XmlError> {
    run_multi_with_limits(mfts, reader, sinks, StreamLimits::default())
}

/// [`run_multi`] with explicit per-lane [`StreamLimits`].
pub fn run_multi_with_limits<R: BufRead, S: XmlSink>(
    mfts: &[&Mft],
    mut reader: XmlReader<R>,
    sinks: Vec<S>,
    limits: StreamLimits,
) -> Result<MultiRun<S>, XmlError> {
    assert_eq!(mfts.len(), sinks.len(), "one sink per query");
    let mut engine = MultiQueryEngine::with_limits(mfts.iter().copied().zip(sinks), limits);
    loop {
        if engine.running() == 0 {
            // Every lane failed: nothing can produce output any more, so
            // don't pay for parsing the rest of the stream.
            let input_events = engine.input_events();
            return Ok(MultiRun {
                results: engine.finish(),
                input_events,
            });
        }
        match reader.next_event()? {
            XmlEvent::Open(label) => engine.open(&label),
            XmlEvent::Close(_) => engine.close(),
            XmlEvent::Eof => {
                let input_events = engine.input_events() + 1;
                return Ok(MultiRun {
                    results: engine.finish(),
                    input_events,
                });
            }
        }
    }
}

/// Drive N transducers from an in-memory forest (tests and benchmarks).
pub fn run_multi_on_forest<S: XmlSink>(
    mfts: &[&Mft],
    forest: &[Tree],
    sinks: Vec<S>,
) -> MultiRun<S> {
    assert_eq!(mfts.len(), sinks.len(), "one sink per query");
    let mut engine = MultiQueryEngine::new(mfts.iter().copied().zip(sinks));
    fn feed<S: XmlSink>(engine: &mut MultiQueryEngine<'_, S>, t: &Tree) {
        engine.open(&t.label);
        for c in &t.children {
            feed(engine, c);
        }
        engine.close();
    }
    for t in forest {
        feed(&mut engine, t);
    }
    let input_events = engine.input_events() + 1;
    MultiRun {
        results: engine.finish(),
        input_events,
    }
}

/// Convenience driver for [`crate::PreparedQuery`] sets: one pass over
/// `input`, serialized per-query outputs.
pub fn run_multi_to_strings(
    queries: &[std::sync::Arc<crate::PreparedQuery>],
    input: &[u8],
) -> Result<MultiRun<String>, XmlError> {
    let mfts: Vec<&Mft> = queries.iter().map(|q| q.mft()).collect();
    let sinks: Vec<_> = queries
        .iter()
        .map(|_| foxq_xml::WriterSink::new(Vec::new()))
        .collect();
    let run = run_multi(&mfts, XmlReader::new(input), sinks)?;
    Ok(MultiRun {
        results: run
            .results
            .into_iter()
            .map(|r| {
                r.map(|(sink, stats)| {
                    let buf = sink.finish().expect("writing to Vec cannot fail");
                    (String::from_utf8(buf).expect("output is UTF-8"), stats)
                })
            })
            .collect(),
        input_events: run.input_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_core::opt::optimize;
    use foxq_core::text::parse_mft;
    use foxq_core::translate::translate;
    use foxq_forest::term::parse_forest;
    use foxq_xml::{forest_to_xml_string, ForestSink};
    use foxq_xquery::parse_query;

    fn mft_of(q: &str) -> Mft {
        optimize(translate(&parse_query(q).unwrap()).unwrap())
    }

    #[test]
    fn lanes_agree_with_solo_runs() {
        let queries = ["<a>{$input/x}</a>", "<b>{$input//y}</b>", "<c><k/></c>"];
        let mfts: Vec<Mft> = queries.iter().map(|q| mft_of(q)).collect();
        let doc = parse_forest(r#"x("1") y(x() y("2"))"#).unwrap();
        let refs: Vec<&Mft> = mfts.iter().collect();
        let sinks = vec![ForestSink::new(), ForestSink::new(), ForestSink::new()];
        let run = run_multi_on_forest(&refs, &doc, sinks);
        for (m, r) in mfts.iter().zip(run.results) {
            let (sink, _) = r.unwrap();
            let (solo, _) =
                foxq_core::stream::run_streaming_on_forest(m, &doc, ForestSink::new()).unwrap();
            assert_eq!(
                forest_to_xml_string(&sink.into_forest()),
                forest_to_xml_string(&solo.into_forest())
            );
        }
    }

    #[test]
    fn one_lane_failing_does_not_abort_the_others() {
        let looping = parse_mft("q0(%) -> q0(x0);").unwrap();
        let copy =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        let doc = parse_forest(r#"a(b("t"))"#).unwrap();
        let limits = StreamLimits {
            max_expansions_per_event: 1_000,
            ..StreamLimits::default()
        };
        let mut engine = MultiQueryEngine::with_limits(
            vec![
                (&looping, ForestSink::new()),
                (&copy, ForestSink::new()),
                (&looping, ForestSink::new()),
            ],
            limits,
        );
        fn feed<S: XmlSink>(e: &mut MultiQueryEngine<'_, S>, t: &Tree) {
            e.open(&t.label);
            for c in &t.children {
                feed(e, c);
            }
            e.close();
        }
        for t in &doc {
            feed(&mut engine, t);
        }
        assert_eq!(engine.running(), 1, "looping lanes should have failed");
        let results = engine.finish();
        assert!(matches!(results[0], Err(StreamError::Fuel { .. })));
        assert!(matches!(results[2], Err(StreamError::Fuel { .. })));
        let (sink, stats) = results.into_iter().nth(1).unwrap().unwrap();
        assert_eq!(forest_to_xml_string(&sink.into_forest()), "<a><b>t</b></a>");
        assert_eq!(stats.events, 7); // 3 opens + 3 closes + eof
    }

    #[test]
    fn all_lanes_failing_aborts_the_pass_early() {
        let looping = parse_mft("q0(%) -> q0(x0);").unwrap();
        let doc = format!("<a>{}</a>", "<b></b>".repeat(1_000));
        let run = run_multi_with_limits(
            &[&looping],
            XmlReader::new(doc.as_bytes()),
            vec![foxq_xml::NullSink],
            StreamLimits {
                max_expansions_per_event: 100,
                ..StreamLimits::default()
            },
        )
        .unwrap();
        assert!(matches!(run.results[0], Err(StreamError::Fuel { .. })));
        // The sole lane died on the first open; the other 2001 events were
        // never pulled from the reader.
        assert_eq!(run.input_events, 1);
    }

    #[test]
    fn input_events_are_counted_once() {
        let m = mft_of("<o>{$input/a}</o>");
        let doc = parse_forest("a() b(c())").unwrap();
        for n in [1usize, 4] {
            let refs: Vec<&Mft> = vec![&m; n];
            let sinks: Vec<_> = (0..n).map(|_| foxq_xml::NullSink).collect();
            let run = run_multi_on_forest(&refs, &doc, sinks);
            assert_eq!(run.input_events, 7); // 3 opens + 3 closes + eof
        }
    }
}
