//! Multi-query evaluation over a **single pass** of the event stream.
//!
//! The event stream is the scarce resource of a streamed tree-query system:
//! parsing is a full scan of the input, and under serving traffic the same
//! document is typically interrogated by many queries at once. A
//! [`MultiQueryEngine`] holds one `core::stream::Engine` lane per prepared
//! query and fans every `open`/`close` event out to all of them, so N
//! queries are answered with one parse — the reader's event counter does not
//! move as N grows (proven by `tests/service.rs`).
//!
//! Failure is isolated per lane: a query that exhausts its
//! [`StreamLimits`] (a stay-move loop, typically) marks only its own lane
//! failed; the remaining queries keep streaming. Only input-side errors
//! (malformed XML) abort the whole pass, since every lane shares the input.
//!
//! ## The shared label prefilter
//!
//! Most translated MFTs are child-path navigators: every state either
//! reacts to a handful of `(q,σ)`-rules or skips the node with a pure
//! `q(x2)` default. [`foxq_core::mft::Mft::projection`] detects that shape
//! statically, and the engine unions the **matched label sets of every
//! eligible lane**: an event whose label no lane can match is withheld —
//! with its whole subtree — from all eligible lanes at once, so it costs
//! one hash probe instead of N rule expansions. A lane whose projection is
//! label-agnostic (descendant axes, subtree copies, stay loops) simply
//! passes through and keeps receiving every event; the withheld-event count
//! is reported per lane in [`StreamStats::prefiltered_events`].

use foxq_core::emit::EmitSink;
use foxq_core::mft::Mft;
use foxq_core::stream::{Engine, StreamError, StreamLimits, StreamObserver, StreamStats};
use foxq_forest::{FxHashSet, Label, Tree};
use foxq_store::{index_drive, IndexedReplay, StoreError, TapeDrive, TapeReader};
use foxq_xml::{EventSource, XmlError, XmlEvent, XmlReader, XmlSink};
use std::io::{BufRead, Seek};
use std::sync::Arc;

/// One query's lane inside the fan-out.
enum Lane<'m, S, O: StreamObserver = ()> {
    // Boxed: an Engine is ~an order of magnitude larger than a
    // StreamError, and lanes are touched per delivered event anyway.
    Running(Box<Engine<'m, S, O>>),
    Failed(StreamError),
}

/// The shared-prefilter plan of one query set, computed **once** from the
/// lanes' static projections and reusable across any number of documents
/// and worker threads (the label set is behind an [`Arc`], so handing it
/// to another engine is a pointer copy, not a recomputation).
///
/// [`crate::BatchDriver`] builds one plan per batch instead of re-running
/// [`Mft::projection`] per document — the first bite of cross-document
/// query-set sharing.
#[derive(Debug, Clone)]
pub struct QuerySetPlan {
    /// Lane index → participates in the shared prefilter.
    eligible: Vec<bool>,
    /// Union of every eligible lane's matched labels.
    matched: Arc<FxHashSet<Label>>,
    /// Every eligible lane may skip unmatched *text* events too.
    texts: bool,
}

impl QuerySetPlan {
    /// Run the projection analysis once per lane, in lane order.
    pub fn new<'a>(mfts: impl IntoIterator<Item = &'a Mft>) -> QuerySetPlan {
        let mut eligible = Vec::new();
        let mut matched: FxHashSet<Label> = FxHashSet::default();
        let mut texts = true;
        for mft in mfts {
            let projection = mft.projection();
            eligible.push(projection.elements);
            if projection.elements {
                matched.extend(projection.matched);
                texts &= projection.texts;
            }
        }
        QuerySetPlan {
            eligible,
            matched: Arc::new(matched),
            texts,
        }
    }

    /// Number of lanes the plan covers.
    pub fn lane_count(&self) -> usize {
        self.eligible.len()
    }

    /// Lanes participating in the shared prefilter.
    pub fn eligible_lanes(&self) -> usize {
        self.eligible.iter().filter(|&&e| e).count()
    }

    /// Union of the eligible lanes' matched labels (a pointer copy — the
    /// set is behind an [`Arc`]).
    pub fn matched_labels(&self) -> Arc<FxHashSet<Label>> {
        self.matched.clone()
    }

    /// Whether every eligible lane may skip unmatched *text* events too.
    pub fn skips_texts(&self) -> bool {
        self.texts
    }

    /// Every lane participates in the prefilter (and there is at least
    /// one) — the precondition for driving the input from a tape's label
    /// skip index, where withheld events are never even decoded.
    pub fn prefilters_whole_set(&self) -> bool {
        !self.eligible.is_empty() && self.eligible.iter().all(|&e| e)
    }

    /// A plan that prefilters nothing: every lane is ineligible, so each
    /// receives every event and tape drivers decode every frame. The A/B
    /// baseline for prefilter measurements and the prefilter-off arm of
    /// the emission-identity proptests.
    pub fn pass_through(lane_count: usize) -> QuerySetPlan {
        QuerySetPlan {
            eligible: vec![false; lane_count],
            matched: Arc::new(FxHashSet::default()),
            texts: false,
        }
    }
}

/// Shared start-tag prefilter state over the eligible lanes.
struct Prefilter {
    /// Union of every eligible lane's matched labels: events carrying any
    /// other label are withheld from the eligible lanes.
    matched: Arc<FxHashSet<Label>>,
    /// Every eligible lane may skip unmatched *text* events too.
    texts: bool,
    /// Open-depth inside a currently skipped subtree (0 = delivering).
    skip_depth: u64,
    /// Events withheld so far (opens + closes).
    skipped: u64,
    /// Tape bytes a seeking driver jumped over on the eligible lanes'
    /// behalf (see [`MultiQueryEngine::note_skipped_subtree`]).
    seek_bytes: u64,
    /// Tape bytes a label skip index proved irrelevant on the eligible
    /// lanes' behalf (see [`MultiQueryEngine::note_index_skipped`]).
    index_bytes: u64,
    /// One entry per *delivered* open event: was it a text label?
    text_parents: Vec<bool>,
    /// Currently open delivered text nodes. A skip must never start inside
    /// a text-rooted subtree: `x1`-of-text-rule subscribers are exempt from
    /// the projection's requirements and propagate freely within one (text
    /// nodes only have children in hand-built forests, but correctness must
    /// not depend on the input being XML-shaped).
    open_texts: u64,
}

/// Fan one event stream out to N streaming engines.
pub struct MultiQueryEngine<'m, S, O: StreamObserver = ()> {
    lanes: Vec<Lane<'m, S, O>>,
    /// Lane index → participates in the shared prefilter.
    eligible: Vec<bool>,
    filter: Option<Prefilter>,
    running: usize,
    input_events: u64,
    /// Per-lane wall time (nanoseconds), when lane timing is enabled.
    lane_nanos: Option<Vec<u64>>,
}

impl<'m, S: XmlSink> MultiQueryEngine<'m, S> {
    /// One lane per `(mft, sink)` pair, with default limits.
    pub fn new(queries: impl IntoIterator<Item = (&'m Mft, S)>) -> Self {
        Self::with_limits(queries, StreamLimits::default())
    }

    /// One lane per `(mft, sink)` pair, sharing `limits`. The prefilter
    /// plan is computed here; callers evaluating the same query set over
    /// many documents should compute a [`QuerySetPlan`] once and use
    /// [`MultiQueryEngine::with_plan`] instead.
    pub fn with_limits(
        queries: impl IntoIterator<Item = (&'m Mft, S)>,
        limits: StreamLimits,
    ) -> Self {
        let queries: Vec<(&'m Mft, S)> = queries.into_iter().collect();
        let plan = QuerySetPlan::new(queries.iter().map(|(m, _)| *m));
        Self::with_plan(queries, limits, &plan)
    }

    /// One lane per `(mft, sink)` pair under a precomputed
    /// [`QuerySetPlan`] (which must have been built from the same MFTs, in
    /// the same order).
    pub fn with_plan(
        queries: impl IntoIterator<Item = (&'m Mft, S)>,
        limits: StreamLimits,
        plan: &QuerySetPlan,
    ) -> Self {
        MultiQueryEngine::with_observers(
            queries.into_iter().map(|(mft, sink)| (mft, sink, ())),
            limits,
            plan,
        )
    }
}

impl<'m, S: XmlSink, O: StreamObserver> MultiQueryEngine<'m, S, O> {
    /// One lane per `(mft, sink, observer)` triple under a precomputed
    /// [`QuerySetPlan`] — the profiling variant of
    /// [`MultiQueryEngine::with_plan`].
    pub fn with_observers(
        queries: impl IntoIterator<Item = (&'m Mft, S, O)>,
        limits: StreamLimits,
        plan: &QuerySetPlan,
    ) -> Self {
        let lanes: Vec<Lane<'m, S, O>> = queries
            .into_iter()
            .map(|(mft, sink, obs)| {
                Lane::Running(Box::new(Engine::with_observer(mft, sink, limits, obs)))
            })
            .collect();
        assert_eq!(
            lanes.len(),
            plan.eligible.len(),
            "plan built for a different lane count"
        );
        let eligible = plan.eligible.clone();
        let filter = eligible.iter().any(|&e| e).then_some(Prefilter {
            matched: plan.matched.clone(),
            texts: plan.texts,
            skip_depth: 0,
            skipped: 0,
            seek_bytes: 0,
            index_bytes: 0,
            text_parents: Vec::new(),
            open_texts: 0,
        });
        MultiQueryEngine {
            running: lanes.len(),
            lanes,
            eligible,
            filter,
            input_events: 0,
            lane_nanos: None,
        }
    }

    /// Measure per-lane run time: every event delivery is clocked and
    /// charged to the lane that consumed it. Off by default — two
    /// monotonic-clock reads per event per lane is real overhead — so
    /// drivers opt in for diagnostics/ablation, not on the serving hot
    /// path. Must be called before the first event is fed.
    pub fn enable_lane_timing(&mut self) {
        assert_eq!(self.input_events, 0, "enable_lane_timing after events fed");
        self.lane_nanos = Some(vec![0; self.lanes.len()]);
    }

    /// Per-lane accumulated run time in nanoseconds; `None` unless
    /// [`MultiQueryEngine::enable_lane_timing`] was called.
    pub fn lane_nanos(&self) -> Option<&[u64]> {
        self.lane_nanos.as_deref()
    }

    /// Number of lanes (queries).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Lanes that have not failed.
    pub fn running(&self) -> usize {
        self.running
    }

    /// Open/close events fed so far, each counted once (not once per lane);
    /// matches [`XmlReader::events_read`] when driven from a reader. The
    /// end-of-input tick is not counted — drivers add it when reporting.
    pub fn input_events(&self) -> u64 {
        self.input_events
    }

    /// Lanes participating in the shared label prefilter.
    pub fn prefiltered_lanes(&self) -> usize {
        match self.filter {
            Some(_) => self.eligible.iter().filter(|&&e| e).count(),
            None => 0,
        }
    }

    /// Events the prefilter withheld from the eligible lanes so far.
    pub fn prefiltered_events(&self) -> u64 {
        self.filter.as_ref().map_or(0, |f| f.skipped)
    }

    /// Bytes a seeking driver reported via
    /// [`MultiQueryEngine::note_skipped_subtree`].
    pub fn seek_skipped_bytes(&self) -> u64 {
        self.filter.as_ref().map_or(0, |f| f.seek_bytes)
    }

    /// Bytes an index-driven replay reported via
    /// [`MultiQueryEngine::note_index_skipped`].
    pub fn index_skipped_bytes(&self) -> u64 {
        self.filter.as_ref().map_or(0, |f| f.index_bytes)
    }

    /// Record what an index-driven tape replay withheld wholesale:
    /// `events` opens + closes that were never decoded and `bytes` of tape
    /// the merged cursor jumped over. The index equivalent of
    /// [`MultiQueryEngine::note_skipped_subtree`], reported once at end of
    /// input (the index knows the exact remainder from the footer's event
    /// count, not per skipped subtree).
    pub fn note_index_skipped(&mut self, events: u64, bytes: u64) {
        self.input_events += events;
        let f = self
            .filter
            .as_mut()
            .expect("note_index_skipped without a prefilter");
        f.skipped += events;
        f.index_bytes += bytes;
    }

    /// Would feeding `open(label)` at this point deliver the event to *no*
    /// lane? True exactly when every running lane is prefilter-eligible and
    /// the event would start (or extend) a skip — the caller may then skip
    /// the **entire subtree** externally (a seekable tape jumps straight to
    /// the close frame) and report it with
    /// [`MultiQueryEngine::note_skipped_subtree`] instead of feeding it.
    pub fn can_skip_subtree(&self, label: &Label) -> bool {
        let Some(f) = &self.filter else {
            return false;
        };
        // A pass-through (non-eligible) lane still needs every event.
        let all_eligible = self
            .lanes
            .iter()
            .zip(&self.eligible)
            .all(|(lane, &e)| e || !matches!(lane, Lane::Running(_)));
        if !all_eligible {
            return false;
        }
        if f.skip_depth > 0 {
            // Already inside a scan-mode skip: the subtree is withheld
            // either way, and it is internally balanced, so jumping over
            // it leaves the skip depth correct.
            return true;
        }
        if f.open_texts > 0 {
            return false;
        }
        let kind_ok = !label.is_text() || f.texts;
        kind_ok && !f.matched.contains(label)
    }

    /// Record a subtree that an external driver skipped without feeding:
    /// `events` opens + closes (the subtree's own open and close included)
    /// and `bytes` of undecoded input. Only valid right after
    /// [`MultiQueryEngine::can_skip_subtree`] returned true for the
    /// subtree's open event.
    pub fn note_skipped_subtree(&mut self, events: u64, bytes: u64) {
        self.input_events += events;
        let f = self
            .filter
            .as_mut()
            .expect("note_skipped_subtree without a prefilter");
        f.skipped += events;
        f.seek_bytes += bytes;
    }

    /// Turn the shared prefilter off (every lane then receives every
    /// event). Must be called before the first event is fed; useful for A/B
    /// measurements.
    pub fn disable_prefilter(&mut self) {
        assert_eq!(self.input_events, 0, "disable_prefilter after events fed");
        self.filter = None;
        self.eligible.iter_mut().for_each(|e| *e = false);
    }

    /// Feed an event to live lanes; `eligible_too = false` withholds it
    /// from the prefiltered lanes.
    fn each_running(
        &mut self,
        eligible_too: bool,
        mut f: impl FnMut(&mut Engine<'m, S, O>) -> Result<(), StreamError>,
    ) {
        for (i, (lane, &eligible)) in self.lanes.iter_mut().zip(&self.eligible).enumerate() {
            if !eligible_too && eligible {
                continue;
            }
            if let Lane::Running(engine) = lane {
                let start = self.lane_nanos.is_some().then(std::time::Instant::now);
                let result = f(engine);
                if let (Some(start), Some(nanos)) = (start, self.lane_nanos.as_mut()) {
                    nanos[i] += start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                }
                if let Err(e) = result {
                    *lane = Lane::Failed(e);
                    self.running -= 1;
                }
            }
        }
    }

    /// Feed an opening event (element or text node) to every live lane.
    pub fn open(&mut self, label: &Label) {
        self.input_events += 1;
        let deliver_all = match &mut self.filter {
            None => true,
            Some(f) => {
                if f.skip_depth > 0 {
                    f.skip_depth += 1;
                    f.skipped += 1;
                    false
                } else {
                    let kind_ok = !label.is_text() || f.texts;
                    if f.open_texts == 0 && kind_ok && !f.matched.contains(label) {
                        f.skip_depth = 1;
                        f.skipped += 1;
                        false
                    } else {
                        f.text_parents.push(label.is_text());
                        f.open_texts += u64::from(label.is_text());
                        true
                    }
                }
            }
        };
        self.each_running(deliver_all, |e| e.open(label));
    }

    /// Feed the matching closing event to every live lane.
    pub fn close(&mut self) {
        self.input_events += 1;
        let deliver_all = match &mut self.filter {
            None => true,
            Some(f) => {
                if f.skip_depth > 0 {
                    f.skip_depth -= 1;
                    f.skipped += 1;
                    false
                } else {
                    if let Some(was_text) = f.text_parents.pop() {
                        f.open_texts -= u64::from(was_text);
                    }
                    true
                }
            }
        };
        self.each_running(deliver_all, |e| e.close());
    }

    /// Signal end of input; collect each lane's sink and statistics. Lanes
    /// the prefilter served report the withheld-event count in
    /// [`StreamStats::prefiltered_events`].
    pub fn finish(self) -> Vec<Result<(S, StreamStats), StreamError>> {
        self.finish_observed()
            .into_iter()
            .map(|r| r.map(|(sink, stats, _)| (sink, stats)))
            .collect()
    }

    /// [`MultiQueryEngine::finish`], also handing back each lane's
    /// observer.
    pub fn finish_observed(mut self) -> Vec<Result<(S, StreamStats, O), StreamError>> {
        let skipped = self.prefiltered_events();
        let seek_bytes = self.seek_skipped_bytes();
        let index_bytes = self.index_skipped_bytes();
        let eligible = std::mem::take(&mut self.eligible);
        self.lanes
            .drain(..)
            .zip(eligible)
            .map(|(lane, eligible)| match lane {
                Lane::Running(engine) => engine.finish_observed().map(|(sink, mut stats, obs)| {
                    if eligible {
                        stats.prefiltered_events = skipped;
                        stats.seek_skipped_bytes = seek_bytes;
                        stats.index_skipped_bytes = index_bytes;
                    }
                    (sink, stats, obs)
                }),
                Lane::Failed(e) => Err(e),
            })
            .collect()
    }
}

impl<'m, S: EmitSink, O: StreamObserver> MultiQueryEngine<'m, S, O> {
    /// Fire every running lane's emission boundary: whatever its engine
    /// flushed since the previous boundary is irrevocable (no pending
    /// call to its left) and is released downstream. Called by the
    /// `*_emit` drivers after each delivered event. A delivery failure
    /// (e.g. the lane's client hung up) fails only that lane, like any
    /// other engine-side error.
    pub fn emit_running(&mut self) {
        self.each_running(true, |e| e.sink_mut().emit().map_err(StreamError::from));
    }
}

/// Result of [`run_multi`]: per-query outcomes plus the shared input cost.
pub struct MultiRun<S> {
    /// One result per query, in input order. Per-query failures (e.g. fuel
    /// exhaustion) appear here; they do not abort the other queries.
    pub results: Vec<Result<(S, StreamStats), StreamError>>,
    /// Events consumed from the (single) reader pass, including the
    /// end-of-input tick — equals each successful lane's `stats.events`.
    pub input_events: u64,
    /// Input bytes the pass *seeked over* instead of decoding. Nonzero only
    /// for [`run_multi_on_tape`] (XML text cannot be skipped without being
    /// scanned).
    pub seek_skipped_bytes: u64,
    /// Wall time spent seeking (inside [`TapeReader::skip_subtree`]), in
    /// microseconds — splits tape cost into replay vs. seek for the
    /// request-level stage breakdown. Nonzero only for
    /// [`run_multi_on_tape`].
    pub tape_seek_micros: u64,
    /// Input bytes a FET2 label skip index proved irrelevant, so the
    /// merged cursor jumped over them without decoding a single frame.
    /// Nonzero only when [`run_multi_on_tape`] takes the index path.
    pub index_skipped_bytes: u64,
    /// Wall time spent merging and advancing posting lists, in
    /// microseconds — the index path's analogue of
    /// [`MultiRun::tape_seek_micros`].
    pub index_probe_micros: u64,
}

/// Result of an `*_observed` driver: [`MultiRun`] whose per-lane
/// payloads also carry the lane's [`StreamObserver`] (e.g. a
/// `StreamProfiler` ready to be turned into a profile).
pub struct ObservedMultiRun<S, O> {
    /// One result per query, in input order, observer included.
    pub results: Vec<Result<(S, StreamStats, O), StreamError>>,
    /// See [`MultiRun::input_events`].
    pub input_events: u64,
    /// See [`MultiRun::seek_skipped_bytes`].
    pub seek_skipped_bytes: u64,
    /// See [`MultiRun::tape_seek_micros`].
    pub tape_seek_micros: u64,
    /// See [`MultiRun::index_skipped_bytes`].
    pub index_skipped_bytes: u64,
    /// See [`MultiRun::index_probe_micros`].
    pub index_probe_micros: u64,
}

impl<S, O> ObservedMultiRun<S, O> {
    /// Separate the run from the per-lane observers (`None` for failed
    /// lanes).
    pub fn split(self) -> (MultiRun<S>, Vec<Option<O>>) {
        let mut observers = Vec::with_capacity(self.results.len());
        let results = self
            .results
            .into_iter()
            .map(|r| match r {
                Ok((sink, stats, obs)) => {
                    observers.push(Some(obs));
                    Ok((sink, stats))
                }
                Err(e) => {
                    observers.push(None);
                    Err(e)
                }
            })
            .collect();
        (
            MultiRun {
                results,
                input_events: self.input_events,
                seek_skipped_bytes: self.seek_skipped_bytes,
                tape_seek_micros: self.tape_seek_micros,
                index_skipped_bytes: self.index_skipped_bytes,
                index_probe_micros: self.index_probe_micros,
            },
            observers,
        )
    }

    /// Drop the observers, keeping only the plain run.
    pub fn discard_observers(self) -> MultiRun<S> {
        self.split().0
    }
}

/// Pair each sink with the disabled `()` observer.
fn plain_lanes<S>(sinks: Vec<S>) -> Vec<(S, ())> {
    sinks.into_iter().map(|s| (s, ())).collect()
}

/// Run N transducers over one pass of any event source (an
/// [`foxq_xml::XmlReader`], a replayed tape, …).
///
/// Input-side errors fail the whole run (every lane reads the same
/// stream); engine-side errors are isolated per query. Once *every* lane
/// has failed the rest of the input is not read (so the tail is no longer
/// checked for well-formedness) — `input_events` then reflects the events
/// consumed up to the abort.
pub fn run_multi<E: EventSource, S: XmlSink>(
    mfts: &[&Mft],
    events: E,
    sinks: Vec<S>,
) -> Result<MultiRun<S>, XmlError> {
    run_multi_with_limits(mfts, events, sinks, StreamLimits::default())
}

/// [`run_multi`] with explicit per-lane [`StreamLimits`].
pub fn run_multi_with_limits<E: EventSource, S: XmlSink>(
    mfts: &[&Mft],
    events: E,
    sinks: Vec<S>,
    limits: StreamLimits,
) -> Result<MultiRun<S>, XmlError> {
    let plan = QuerySetPlan::new(mfts.iter().copied());
    run_multi_with_plan(mfts, events, sinks, limits, &plan)
}

/// [`run_multi_with_limits`] under a precomputed [`QuerySetPlan`] —
/// evaluating the same query set over many documents computes the
/// projections once, not once per document.
pub fn run_multi_with_plan<E: EventSource, S: XmlSink>(
    mfts: &[&Mft],
    events: E,
    sinks: Vec<S>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<MultiRun<S>, XmlError> {
    run_multi_with_plan_observed(mfts, events, plain_lanes(sinks), limits, plan)
        .map(ObservedMultiRun::discard_observers)
}

/// [`run_multi_with_plan`] with a [`StreamObserver`] per lane.
pub fn run_multi_with_plan_observed<E: EventSource, S: XmlSink, O: StreamObserver>(
    mfts: &[&Mft],
    events: E,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<ObservedMultiRun<S, O>, XmlError> {
    run_multi_hooked(mfts, events, lanes, limits, plan, |_| {})
}

/// The shared event-source loop: feed each event to the fan-out, then let
/// `after_event` fire (the `*_emit` drivers release irrevocable prefixes
/// there; plain drivers pass a no-op that compiles away).
fn run_multi_hooked<'m, E: EventSource, S: XmlSink, O: StreamObserver>(
    mfts: &[&'m Mft],
    mut events: E,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
    mut after_event: impl FnMut(&mut MultiQueryEngine<'m, S, O>),
) -> Result<ObservedMultiRun<S, O>, XmlError> {
    assert_eq!(mfts.len(), lanes.len(), "one sink per query");
    let mut engine = MultiQueryEngine::with_observers(
        mfts.iter().copied().zip(lanes).map(|(m, (s, o))| (m, s, o)),
        limits,
        plan,
    );
    loop {
        if engine.running() == 0 {
            // Every lane failed: nothing can produce output any more, so
            // don't pay for parsing the rest of the stream.
            let input_events = engine.input_events();
            return Ok(ObservedMultiRun {
                results: engine.finish_observed(),
                input_events,
                seek_skipped_bytes: 0,
                tape_seek_micros: 0,
                index_skipped_bytes: 0,
                index_probe_micros: 0,
            });
        }
        match events.next_event()? {
            XmlEvent::Open(label) => engine.open(&label),
            XmlEvent::Close(_) => engine.close(),
            XmlEvent::Eof => {
                let input_events = engine.input_events() + 1;
                return Ok(ObservedMultiRun {
                    results: engine.finish_observed(),
                    input_events,
                    seek_skipped_bytes: 0,
                    tape_seek_micros: 0,
                    index_skipped_bytes: 0,
                    index_probe_micros: 0,
                });
            }
        }
        after_event(&mut engine);
    }
}

/// Run N transducers over one replay of a [`TapeReader`], reading as
/// little of the tape as the query set permits.
///
/// Two escalating read paths, picked automatically:
///
/// * **Index** — when the tape is FET2 with a usable skip index and
///   *every* lane participates in the prefilter, the matched labels'
///   posting lists drive a merged cursor ([`foxq_store::index_drive`])
///   that decodes only candidate frames; everything between them is
///   jumped over without so much as a tag-byte read, reported in
///   [`MultiRun::index_skipped_bytes`].
/// * **Scan with seek** — otherwise (FET1 tapes, flagged tapes, a
///   pass-through lane in the set), every frame is decoded and, when
///   [`MultiQueryEngine::can_skip_subtree`] says an open event would reach
///   no lane, the tape jumps straight to the matching close frame
///   ([`MultiRun::seek_skipped_bytes`]).
///
/// Output and event accounting are identical across both paths and a full
/// replay (`tests/store.rs` proves it); [`run_multi_on_tape_scan`] forces
/// the scan path for A/B measurement.
pub fn run_multi_on_tape<R: BufRead + Seek, S: XmlSink>(
    mfts: &[&Mft],
    tape: TapeReader<R>,
    sinks: Vec<S>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<MultiRun<S>, StoreError> {
    run_multi_on_tape_observed(mfts, tape, plain_lanes(sinks), limits, plan)
        .map(ObservedMultiRun::discard_observers)
}

/// [`run_multi_on_tape`] with a [`StreamObserver`] per lane.
pub fn run_multi_on_tape_observed<R: BufRead + Seek, S: XmlSink, O: StreamObserver>(
    mfts: &[&Mft],
    tape: TapeReader<R>,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<ObservedMultiRun<S, O>, StoreError> {
    if plan.prefilters_whole_set() {
        return match index_drive(tape, plan.matched_labels(), plan.skips_texts())? {
            TapeDrive::Indexed(drive) => run_multi_on_index(mfts, drive, lanes, limits, plan),
            TapeDrive::Linear(tape) => {
                run_multi_on_tape_scan_observed(mfts, tape, lanes, limits, plan)
            }
        };
    }
    run_multi_on_tape_scan_observed(mfts, tape, lanes, limits, plan)
}

/// The index path of [`run_multi_on_tape`]: deliver the merged cursor's
/// events, then account everything it withheld in one step at end of
/// input (the footer's event count makes the remainder exact).
fn run_multi_on_index<R: BufRead + Seek, S: XmlSink, O: StreamObserver>(
    mfts: &[&Mft],
    drive: IndexedReplay<R>,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<ObservedMultiRun<S, O>, StoreError> {
    run_multi_on_index_hooked(mfts, drive, lanes, limits, plan, |_| {})
}

/// [`run_multi_on_index`] with the shared `after_event` hook.
fn run_multi_on_index_hooked<'m, R: BufRead + Seek, S: XmlSink, O: StreamObserver>(
    mfts: &[&'m Mft],
    mut drive: IndexedReplay<R>,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
    mut after_event: impl FnMut(&mut MultiQueryEngine<'m, S, O>),
) -> Result<ObservedMultiRun<S, O>, StoreError> {
    assert_eq!(mfts.len(), lanes.len(), "one sink per query");
    let mut engine = MultiQueryEngine::with_observers(
        mfts.iter().copied().zip(lanes).map(|(m, (s, o))| (m, s, o)),
        limits,
        plan,
    );
    let done = |engine: MultiQueryEngine<'_, S, O>, drive: &IndexedReplay<R>, eof: bool| {
        let input_events = engine.input_events() + u64::from(eof);
        let index_skipped_bytes = engine.index_skipped_bytes();
        ObservedMultiRun {
            results: engine.finish_observed(),
            input_events,
            seek_skipped_bytes: 0,
            tape_seek_micros: 0,
            index_skipped_bytes,
            index_probe_micros: drive.probe_micros(),
        }
    };
    loop {
        if engine.running() == 0 {
            return Ok(done(engine, &drive, false));
        }
        match drive.next_event()? {
            XmlEvent::Open(label) => engine.open(&label),
            XmlEvent::Close(_) => engine.close(),
            XmlEvent::Eof => {
                engine.note_index_skipped(drive.undelivered_events(), drive.index_skipped_bytes());
                return Ok(done(engine, &drive, true));
            }
        }
        after_event(&mut engine);
    }
}

/// [`run_multi_on_tape`] restricted to the scan-with-seek path — what
/// every tape got before the FET2 skip index, kept callable for FET1
/// tapes and A/B measurement.
pub fn run_multi_on_tape_scan<R: BufRead + Seek, S: XmlSink>(
    mfts: &[&Mft],
    tape: TapeReader<R>,
    sinks: Vec<S>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<MultiRun<S>, StoreError> {
    run_multi_on_tape_scan_observed(mfts, tape, plain_lanes(sinks), limits, plan)
        .map(ObservedMultiRun::discard_observers)
}

/// [`run_multi_on_tape_scan`] with a [`StreamObserver`] per lane.
pub fn run_multi_on_tape_scan_observed<R: BufRead + Seek, S: XmlSink, O: StreamObserver>(
    mfts: &[&Mft],
    tape: TapeReader<R>,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<ObservedMultiRun<S, O>, StoreError> {
    run_multi_on_tape_scan_hooked(mfts, tape, lanes, limits, plan, |_| {})
}

/// [`run_multi_on_tape_scan_observed`] with the shared `after_event` hook.
fn run_multi_on_tape_scan_hooked<'m, R: BufRead + Seek, S: XmlSink, O: StreamObserver>(
    mfts: &[&'m Mft],
    mut tape: TapeReader<R>,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
    mut after_event: impl FnMut(&mut MultiQueryEngine<'m, S, O>),
) -> Result<ObservedMultiRun<S, O>, StoreError> {
    assert_eq!(mfts.len(), lanes.len(), "one sink per query");
    let mut engine = MultiQueryEngine::with_observers(
        mfts.iter().copied().zip(lanes).map(|(m, (s, o))| (m, s, o)),
        limits,
        plan,
    );
    let done = |engine: MultiQueryEngine<'_, S, O>, tape_seek_micros: u64, eof: bool| {
        let input_events = engine.input_events() + u64::from(eof);
        let seek_skipped_bytes = engine.seek_skipped_bytes();
        ObservedMultiRun {
            results: engine.finish_observed(),
            input_events,
            seek_skipped_bytes,
            tape_seek_micros,
            index_skipped_bytes: 0,
            index_probe_micros: 0,
        }
    };
    loop {
        if engine.running() == 0 {
            return Ok(done(engine, tape.seek_micros(), false));
        }
        match tape.next_event()? {
            XmlEvent::Open(label) => {
                if tape.skippable() && engine.can_skip_subtree(&label) {
                    let skipped = tape.skip_subtree()?;
                    engine.note_skipped_subtree(skipped.events, skipped.bytes);
                } else {
                    engine.open(&label);
                }
            }
            XmlEvent::Close(_) => engine.close(),
            XmlEvent::Eof => {
                let seek_micros = tape.seek_micros();
                return Ok(done(engine, seek_micros, true));
            }
        }
        after_event(&mut engine);
    }
}

// ---------------------------------------------------------------------------
// Earliest-emission drivers
// ---------------------------------------------------------------------------

/// Fire the end-of-input emission boundary on every surviving lane: the
/// eof tick's flush ground the remainder of each output, so one last
/// `emit` releases it. A failure here turns that lane's result into
/// [`StreamError::Emit`].
fn final_emits<S: EmitSink, O>(mut run: ObservedMultiRun<S, O>) -> ObservedMultiRun<S, O> {
    run.results = run
        .results
        .into_iter()
        .map(|r| {
            r.and_then(|(mut sink, stats, obs)| {
                sink.emit().map_err(StreamError::from)?;
                Ok((sink, stats, obs))
            })
        })
        .collect();
    run
}

/// [`run_multi_with_plan`] over [`EmitSink`] lanes: after every delivered
/// event each lane's emission boundary fires, releasing whatever its
/// engine just made irrevocable — output streams out while the input is
/// still being read.
pub fn run_multi_emit<E: EventSource, S: EmitSink>(
    mfts: &[&Mft],
    events: E,
    sinks: Vec<S>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<MultiRun<S>, XmlError> {
    run_multi_emit_observed(mfts, events, plain_lanes(sinks), limits, plan)
        .map(ObservedMultiRun::discard_observers)
}

/// [`run_multi_emit`] with a [`StreamObserver`] per lane.
pub fn run_multi_emit_observed<E: EventSource, S: EmitSink, O: StreamObserver>(
    mfts: &[&Mft],
    events: E,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<ObservedMultiRun<S, O>, XmlError> {
    run_multi_hooked(mfts, events, lanes, limits, plan, |e| e.emit_running()).map(final_emits)
}

/// [`run_multi_on_tape`] over [`EmitSink`] lanes — same automatic
/// index-vs-scan path choice, with per-event emission boundaries.
pub fn run_multi_on_tape_emit<R: BufRead + Seek, S: EmitSink>(
    mfts: &[&Mft],
    tape: TapeReader<R>,
    sinks: Vec<S>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<MultiRun<S>, StoreError> {
    run_multi_on_tape_emit_observed(mfts, tape, plain_lanes(sinks), limits, plan)
        .map(ObservedMultiRun::discard_observers)
}

/// [`run_multi_on_tape_emit`] with a [`StreamObserver`] per lane.
pub fn run_multi_on_tape_emit_observed<R: BufRead + Seek, S: EmitSink, O: StreamObserver>(
    mfts: &[&Mft],
    tape: TapeReader<R>,
    lanes: Vec<(S, O)>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<ObservedMultiRun<S, O>, StoreError> {
    let run = if plan.prefilters_whole_set() {
        match index_drive(tape, plan.matched_labels(), plan.skips_texts())? {
            TapeDrive::Indexed(drive) => {
                run_multi_on_index_hooked(mfts, drive, lanes, limits, plan, |e| e.emit_running())?
            }
            TapeDrive::Linear(tape) => {
                run_multi_on_tape_scan_hooked(mfts, tape, lanes, limits, plan, |e| {
                    e.emit_running()
                })?
            }
        }
    } else {
        run_multi_on_tape_scan_hooked(mfts, tape, lanes, limits, plan, |e| e.emit_running())?
    };
    Ok(final_emits(run))
}

/// [`run_multi_on_tape_scan`] over [`EmitSink`] lanes — forces the
/// scan-with-seek path (FET1 tapes, A/B measurement).
pub fn run_multi_on_tape_scan_emit<R: BufRead + Seek, S: EmitSink>(
    mfts: &[&Mft],
    tape: TapeReader<R>,
    sinks: Vec<S>,
    limits: StreamLimits,
    plan: &QuerySetPlan,
) -> Result<MultiRun<S>, StoreError> {
    run_multi_on_tape_scan_hooked(mfts, tape, plain_lanes(sinks), limits, plan, |e| {
        e.emit_running()
    })
    .map(final_emits)
    .map(ObservedMultiRun::discard_observers)
}

/// Drive N transducers from an in-memory forest (tests and benchmarks).
pub fn run_multi_on_forest<S: XmlSink>(
    mfts: &[&Mft],
    forest: &[Tree],
    sinks: Vec<S>,
) -> MultiRun<S> {
    assert_eq!(mfts.len(), sinks.len(), "one sink per query");
    let mut engine = MultiQueryEngine::new(mfts.iter().copied().zip(sinks));
    fn feed<S: XmlSink>(engine: &mut MultiQueryEngine<'_, S>, t: &Tree) {
        engine.open(&t.label);
        for c in &t.children {
            feed(engine, c);
        }
        engine.close();
    }
    for t in forest {
        feed(&mut engine, t);
    }
    let input_events = engine.input_events() + 1;
    MultiRun {
        results: engine.finish(),
        input_events,
        seek_skipped_bytes: 0,
        tape_seek_micros: 0,
        index_skipped_bytes: 0,
        index_probe_micros: 0,
    }
}

/// Convenience driver for [`crate::PreparedQuery`] sets: one pass over
/// `input`, serialized per-query outputs.
pub fn run_multi_to_strings(
    queries: &[std::sync::Arc<crate::PreparedQuery>],
    input: &[u8],
) -> Result<MultiRun<String>, XmlError> {
    let mfts: Vec<&Mft> = queries.iter().map(|q| q.mft()).collect();
    let sinks: Vec<_> = queries
        .iter()
        .map(|_| foxq_xml::WriterSink::new(Vec::new()))
        .collect();
    let run = run_multi(&mfts, XmlReader::new(input), sinks)?;
    Ok(MultiRun {
        results: run
            .results
            .into_iter()
            .map(|r| {
                r.map(|(sink, stats)| {
                    let buf = sink.finish().expect("writing to Vec cannot fail");
                    (String::from_utf8(buf).expect("output is UTF-8"), stats)
                })
            })
            .collect(),
        input_events: run.input_events,
        seek_skipped_bytes: run.seek_skipped_bytes,
        tape_seek_micros: run.tape_seek_micros,
        index_skipped_bytes: run.index_skipped_bytes,
        index_probe_micros: run.index_probe_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_core::opt::optimize;
    use foxq_core::text::parse_mft;
    use foxq_core::translate::translate;
    use foxq_forest::term::parse_forest;
    use foxq_xml::{forest_to_xml_string, ForestSink};
    use foxq_xquery::parse_query;

    fn mft_of(q: &str) -> Mft {
        optimize(translate(&parse_query(q).unwrap()).unwrap())
    }

    #[test]
    fn lanes_agree_with_solo_runs() {
        let queries = ["<a>{$input/x}</a>", "<b>{$input//y}</b>", "<c><k/></c>"];
        let mfts: Vec<Mft> = queries.iter().map(|q| mft_of(q)).collect();
        let doc = parse_forest(r#"x("1") y(x() y("2"))"#).unwrap();
        let refs: Vec<&Mft> = mfts.iter().collect();
        let sinks = vec![ForestSink::new(), ForestSink::new(), ForestSink::new()];
        let run = run_multi_on_forest(&refs, &doc, sinks);
        for (m, r) in mfts.iter().zip(run.results) {
            let (sink, _) = r.unwrap();
            let (solo, _) =
                foxq_core::stream::run_streaming_on_forest(m, &doc, ForestSink::new()).unwrap();
            assert_eq!(
                forest_to_xml_string(&sink.into_forest()),
                forest_to_xml_string(&solo.into_forest())
            );
        }
    }

    #[test]
    fn lane_timing_attributes_run_time_per_lane() {
        let queries = ["<a>{$input/x}</a>", "<b>{$input//y}</b>"];
        let mfts: Vec<Mft> = queries.iter().map(|q| mft_of(q)).collect();
        let doc = parse_forest(&r#"x("1") y(x() y("2")) "#.repeat(200)).unwrap();
        let mut engine = MultiQueryEngine::new(
            mfts.iter()
                .map(|m| (m, foxq_xml::NullSink))
                .collect::<Vec<_>>(),
        );
        assert!(engine.lane_nanos().is_none(), "timing must be opt-in");
        engine.enable_lane_timing();
        fn feed<S: XmlSink>(e: &mut MultiQueryEngine<'_, S>, t: &Tree) {
            e.open(&t.label);
            for c in &t.children {
                feed(e, c);
            }
            e.close();
        }
        for t in &doc {
            feed(&mut engine, t);
        }
        let nanos = engine.lane_nanos().unwrap();
        assert_eq!(nanos.len(), 2);
        // ~2,000 delivered events per lane: every lane has measurable time.
        assert!(nanos.iter().all(|&n| n > 0), "{nanos:?}");
    }

    #[test]
    fn one_lane_failing_does_not_abort_the_others() {
        let looping = parse_mft("q0(%) -> q0(x0);").unwrap();
        let copy =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        let doc = parse_forest(r#"a(b("t"))"#).unwrap();
        let limits = StreamLimits {
            max_expansions_per_event: 1_000,
            ..StreamLimits::default()
        };
        let mut engine = MultiQueryEngine::with_limits(
            vec![
                (&looping, ForestSink::new()),
                (&copy, ForestSink::new()),
                (&looping, ForestSink::new()),
            ],
            limits,
        );
        fn feed<S: XmlSink>(e: &mut MultiQueryEngine<'_, S>, t: &Tree) {
            e.open(&t.label);
            for c in &t.children {
                feed(e, c);
            }
            e.close();
        }
        for t in &doc {
            feed(&mut engine, t);
        }
        assert_eq!(engine.running(), 1, "looping lanes should have failed");
        let results = engine.finish();
        assert!(matches!(results[0], Err(StreamError::Fuel { .. })));
        assert!(matches!(results[2], Err(StreamError::Fuel { .. })));
        let (sink, stats) = results.into_iter().nth(1).unwrap().unwrap();
        assert_eq!(forest_to_xml_string(&sink.into_forest()), "<a><b>t</b></a>");
        assert_eq!(stats.events, 7); // 3 opens + 3 closes + eof
    }

    #[test]
    fn all_lanes_failing_aborts_the_pass_early() {
        let looping = parse_mft("q0(%) -> q0(x0);").unwrap();
        let doc = format!("<a>{}</a>", "<b></b>".repeat(1_000));
        let run = run_multi_with_limits(
            &[&looping],
            XmlReader::new(doc.as_bytes()),
            vec![foxq_xml::NullSink],
            StreamLimits {
                max_expansions_per_event: 100,
                ..StreamLimits::default()
            },
        )
        .unwrap();
        assert!(matches!(run.results[0], Err(StreamError::Fuel { .. })));
        // The sole lane died on the first open; the other 2001 events were
        // never pulled from the reader.
        assert_eq!(run.input_events, 1);
    }

    #[test]
    fn prefilter_skips_unmatched_subtrees_without_changing_output() {
        let m = mft_of("<o>{$input/site/people/person/name/text()}</o>");
        assert!(m.projection().elements, "child-path navigator is eligible");
        let doc = parse_forest(
            r#"site(regions(africa(item(name("decoy"))) asia(item()))
                    people(person(name("Jim") age("33")) person(name("Li"))))"#,
        )
        .unwrap();
        let run = run_multi_on_forest(&[&m], &doc, vec![ForestSink::new()]);
        let (sink, stats) = run.results.into_iter().next().unwrap().unwrap();
        let (solo, solo_stats) =
            foxq_core::stream::run_streaming_on_forest(&m, &doc, ForestSink::new()).unwrap();
        assert_eq!(
            forest_to_xml_string(&sink.into_forest()),
            forest_to_xml_string(&solo.into_forest())
        );
        // The regions subtree (and the age leaf) were withheld…
        assert!(stats.prefiltered_events > 0, "nothing was prefiltered");
        // …and every input event was either delivered or withheld.
        assert_eq!(stats.events + stats.prefiltered_events, solo_stats.events);
        assert_eq!(solo_stats.prefiltered_events, 0);
    }

    #[test]
    fn prefilter_never_starts_a_skip_under_a_text_parent() {
        // The projection exempts x1-of-text-rule callees because text nodes
        // are leaves in XML; a hand-built forest can violate that, and the
        // engine must then deliver the text node's children anyway.
        let m = parse_mft(
            "s(%ttext(x1) x2) -> %t(qcopy(x1)) s(x2);\
             s(%t(x1) x2) -> s(x2);\
             s(eps) -> eps;\
             qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2);\
             qcopy(eps) -> eps;",
        )
        .unwrap();
        assert!(m.projection().elements);
        let text_with_children = Tree {
            label: foxq_forest::Label::text("T"),
            children: vec![parse_forest("z(k())").unwrap().remove(0)],
        };
        let doc = vec![text_with_children];
        let run = run_multi_on_forest(&[&m], &doc, vec![ForestSink::new()]);
        let (sink, stats) = run.results.into_iter().next().unwrap().unwrap();
        let mut solo = MultiQueryEngine::new(vec![(&m, ForestSink::new())]);
        solo.disable_prefilter();
        solo.open(&doc[0].label);
        solo.open(&doc[0].children[0].label);
        solo.open(&doc[0].children[0].children[0].label);
        solo.close();
        solo.close();
        solo.close();
        let (unfiltered, _) = solo.finish().into_iter().next().unwrap().unwrap();
        assert_eq!(
            forest_to_xml_string(&sink.into_forest()),
            forest_to_xml_string(&unfiltered.into_forest()),
        );
        // z(k()) sits under the text node: it must have been delivered.
        assert_eq!(stats.prefiltered_events, 0);
    }

    #[test]
    fn agnostic_lanes_pass_through_while_eligible_lanes_skip() {
        let navigator = mft_of("<o>{$input/site/people/person/name/text()}</o>");
        let copier =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        assert!(!copier.projection().elements);
        let doc = parse_forest(r#"site(junk(a() b("t")) people(person(name("Li"))))"#).unwrap();
        let run = run_multi_on_forest(
            &[&navigator, &copier],
            &doc,
            vec![ForestSink::new(), ForestSink::new()],
        );
        let mut results = run.results.into_iter();
        let (nav_sink, nav_stats) = results.next().unwrap().unwrap();
        let (copy_sink, copy_stats) = results.next().unwrap().unwrap();
        // The agnostic copier saw everything and reproduced the document.
        assert_eq!(copy_stats.prefiltered_events, 0);
        assert_eq!(
            forest_to_xml_string(&copy_sink.into_forest()),
            forest_to_xml_string(&doc)
        );
        // The navigator skipped the junk subtree, output unchanged.
        assert!(nav_stats.prefiltered_events > 0);
        assert_eq!(forest_to_xml_string(&nav_sink.into_forest()), "<o>Li</o>");
        assert_eq!(
            nav_stats.events + nav_stats.prefiltered_events,
            copy_stats.events
        );
    }

    fn tape_of(xml: &str) -> foxq_store::TapeReader<std::io::Cursor<Vec<u8>>> {
        let (out, _, _) =
            foxq_store::ingest_xml_to_tape(xml.as_bytes(), std::io::Cursor::new(Vec::new()))
                .unwrap();
        foxq_store::TapeReader::new(std::io::Cursor::new(out.into_inner())).unwrap()
    }

    #[test]
    fn tape_replay_with_seek_matches_the_parse_path() {
        let m = mft_of("<o>{$input/site/people/person/name/text()}</o>");
        let xml = "<site><regions><africa><item><name>decoy</name></item></africa>\
                   <asia><item/></asia></regions>\
                   <people><person><name>Jim</name><age>33</age></person>\
                   <person><name>Li</name></person></people></site>";
        let parsed = run_multi(
            &[&m],
            XmlReader::new(xml.as_bytes()),
            vec![ForestSink::new()],
        )
        .unwrap();
        let plan = QuerySetPlan::new([&m]);
        let taped = run_multi_on_tape(
            &[&m],
            tape_of(xml),
            vec![ForestSink::new()],
            StreamLimits::default(),
            &plan,
        )
        .unwrap();
        let scanned = run_multi_on_tape_scan(
            &[&m],
            tape_of(xml),
            vec![ForestSink::new()],
            StreamLimits::default(),
            &plan,
        )
        .unwrap();
        let (psink, pstats) = parsed.results.into_iter().next().unwrap().unwrap();
        let (tsink, tstats) = taped.results.into_iter().next().unwrap().unwrap();
        let (ssink, sstats) = scanned.results.into_iter().next().unwrap().unwrap();
        let expected = forest_to_xml_string(&psink.into_forest());
        assert_eq!(forest_to_xml_string(&tsink.into_forest()), expected);
        assert_eq!(forest_to_xml_string(&ssink.into_forest()), expected);
        // All passes withheld the same events. The auto tape pass took the
        // index path (everything under <regions> was jumped over without a
        // decode); the forced scan pass decoded every open and seeked.
        assert_eq!(tstats.prefiltered_events, pstats.prefiltered_events);
        assert_eq!(sstats.prefiltered_events, pstats.prefiltered_events);
        assert!(tstats.prefiltered_events > 0);
        assert!(taped.index_skipped_bytes > 0);
        assert_eq!(taped.seek_skipped_bytes, 0);
        assert_eq!(tstats.index_skipped_bytes, taped.index_skipped_bytes);
        assert!(scanned.seek_skipped_bytes > 0);
        assert_eq!(scanned.index_skipped_bytes, 0);
        assert_eq!(sstats.seek_skipped_bytes, scanned.seek_skipped_bytes);
        assert_eq!(pstats.seek_skipped_bytes, 0);
        assert_eq!(taped.input_events, parsed.input_events);
        assert_eq!(scanned.input_events, parsed.input_events);
        // The index never visits more than the scan path delivers, so it
        // always skips at least what seeking did.
        assert!(taped.index_skipped_bytes >= scanned.seek_skipped_bytes);
    }

    #[test]
    fn tape_seek_is_disabled_while_an_agnostic_lane_runs() {
        let navigator = mft_of("<o>{$input/site/people/person/name/text()}</o>");
        let copier =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        let xml = "<site><junk><a/><b>t</b></junk><people><person><name>Li</name></person></people></site>";
        let plan = QuerySetPlan::new([&navigator, &copier]);
        assert_eq!(plan.eligible_lanes(), 1);
        let run = run_multi_on_tape(
            &[&navigator, &copier],
            tape_of(xml),
            vec![ForestSink::new(), ForestSink::new()],
            StreamLimits::default(),
            &plan,
        )
        .unwrap();
        // The copier needs every event, so nothing could be seeked over…
        assert_eq!(run.seek_skipped_bytes, 0);
        let mut results = run.results.into_iter();
        let (nav, nav_stats) = results.next().unwrap().unwrap();
        let (copy, _) = results.next().unwrap().unwrap();
        // …but the scan-mode prefilter still withheld events from the
        // navigator, and both outputs are correct.
        assert!(nav_stats.prefiltered_events > 0);
        assert_eq!(forest_to_xml_string(&nav.into_forest()), "<o>Li</o>");
        assert_eq!(
            forest_to_xml_string(&copy.into_forest()),
            "<site><junk><a></a><b>t</b></junk><people><person><name>Li</name></person></people></site>"
        );
    }

    #[test]
    fn plan_reuse_matches_per_engine_computation() {
        let a = mft_of("<o>{$input/x/y}</o>");
        let b = mft_of("<o>{$input//z}</o>");
        let plan = QuerySetPlan::new([&a, &b]);
        assert_eq!(plan.lane_count(), 2);
        let doc = parse_forest(r#"x(y("1") q()) w(z("2"))"#).unwrap();
        let mut planned = MultiQueryEngine::with_plan(
            vec![(&a, ForestSink::new()), (&b, ForestSink::new())],
            StreamLimits::default(),
            &plan,
        );
        let mut fresh =
            MultiQueryEngine::new(vec![(&a, ForestSink::new()), (&b, ForestSink::new())]);
        fn feed<S: XmlSink>(e: &mut MultiQueryEngine<'_, S>, t: &Tree) {
            e.open(&t.label);
            for c in &t.children {
                feed(e, c);
            }
            e.close();
        }
        for t in &doc {
            feed(&mut planned, t);
            feed(&mut fresh, t);
        }
        assert_eq!(planned.prefiltered_events(), fresh.prefiltered_events());
        for (p, f) in planned.finish().into_iter().zip(fresh.finish()) {
            assert_eq!(
                forest_to_xml_string(&p.unwrap().0.into_forest()),
                forest_to_xml_string(&f.unwrap().0.into_forest())
            );
        }
    }

    #[test]
    fn input_events_are_counted_once() {
        let m = mft_of("<o>{$input/a}</o>");
        let doc = parse_forest("a() b(c())").unwrap();
        for n in [1usize, 4] {
            let refs: Vec<&Mft> = vec![&m; n];
            let sinks: Vec<_> = (0..n).map(|_| foxq_xml::NullSink).collect();
            let run = run_multi_on_forest(&refs, &doc, sinks);
            assert_eq!(run.input_events, 7); // 3 opens + 3 closes + eof
        }
    }
}
