//! Compile-once query preparation and the hash-keyed LRU cache.
//!
//! The library pipeline (parse → translate → §4.1 optimize) is pure and
//! deterministic, so a query text compiles to the same [`Mft`] every time.
//! [`PreparedQuery`] runs the pipeline once and keeps everything a serving
//! layer needs: both transducers (optimized for execution, unoptimized for
//! ablation/debugging), the parsed AST, and metadata such as state/rule
//! counts and whether the GCX baseline accepts the query. [`QueryCache`]
//! keys prepared queries by an FxHash of the (trimmed) source text with LRU
//! eviction, so repeated query texts — the common case under serving traffic
//! — never recompile.

use foxq_core::opt::{optimize_with_stats, OptStats};
use foxq_core::stream::{
    run_streaming_to_string_with_limits, StreamError, StreamLimits, StreamRunOutput, StreamStats,
};
use foxq_core::translate::{translate, TranslateError};
use foxq_core::Mft;
use foxq_forest::fxhash::FxHasher;
use foxq_forest::FxHashMap;
use foxq_obs::{Stage, StageTimes};
use foxq_xquery::{parse_query, Query, XqSyntaxError};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The stable hash of a query's (trimmed) source text — the key
/// [`QueryCache`] stores prepared queries under, shared by the profile
/// registry ([`crate::ProfileRegistry`]) so cache entries and profiles
/// line up.
pub fn source_key(source: &str) -> u64 {
    let mut h = FxHasher::default();
    source.trim().hash(&mut h);
    h.finish()
}

/// Compile-time resource bounds for [`PreparedQuery::compile_with_limits`].
///
/// `PreparedQuery::compile` serves *untrusted* query text, so every
/// compilation stage is bounded: source length up front, translated
/// transducer size after the (linear) §3 translation. The §4.1 optimizer is
/// internally bounded by its own inlining growth budget
/// (`foxq_core::opt::OptLimits`), so a query that passes these two checks
/// compiles in polynomial time and memory.
#[derive(Debug, Clone, Copy)]
pub struct CompileLimits {
    /// Maximum query source length in bytes.
    pub max_source_bytes: usize,
    /// Maximum size `|M|` of the translated (pre-optimization) MFT.
    pub max_translated_size: usize,
}

impl Default for CompileLimits {
    fn default() -> Self {
        CompileLimits {
            max_source_bytes: 1 << 20,      // 1 MiB of query text
            max_translated_size: 4_000_000, // ~paper-size × 10⁴ headroom
        }
    }
}

/// Failure to compile a query.
#[derive(Debug)]
pub enum PrepareError {
    /// The query text did not parse.
    Syntax(XqSyntaxError),
    /// The query parsed but violates the §2.1 translation restrictions.
    Translate(TranslateError),
    /// A [`CompileLimits`] bound was exceeded.
    TooLarge {
        /// Which bound tripped (`"query source"` or `"translated MFT"`).
        what: &'static str,
        size: usize,
        limit: usize,
    },
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::Syntax(e) => write!(f, "{e}"),
            PrepareError::Translate(e) => write!(f, "{e}"),
            PrepareError::TooLarge { what, size, limit } => {
                write!(f, "{what} too large: {size} exceeds the limit of {limit}")
            }
        }
    }
}

impl std::error::Error for PrepareError {}

impl From<XqSyntaxError> for PrepareError {
    fn from(e: XqSyntaxError) -> Self {
        PrepareError::Syntax(e)
    }
}

impl From<TranslateError> for PrepareError {
    fn from(e: TranslateError) -> Self {
        PrepareError::Translate(e)
    }
}

/// Compile-time metadata of a prepared query.
#[derive(Debug, Clone, Copy)]
pub struct QueryMeta {
    /// States of the optimized MFT.
    pub states: usize,
    /// Size (total rule right-hand sides) of the optimized MFT.
    pub size: usize,
    /// Maximum parameter count of the optimized MFT (0 ⇒ it is an FT).
    pub max_params: usize,
    /// Whether the optimized transducer is parameterless (Theorem 2).
    pub is_ft: bool,
    /// What the §4.1 optimizer removed.
    pub opt_stats: OptStats,
    /// Wall time of each compile stage (parse / translate / optimize).
    /// Cached with the query so a cache miss can attribute its one-time
    /// compile cost to the request that paid it.
    pub compile_times: StageTimes,
}

/// A query compiled once: parse → translate → optimize.
///
/// `PreparedQuery` is immutable, `Send + Sync`, and cheap to share via
/// [`Arc`]; the [`crate::BatchDriver`] hands one set of prepared queries to
/// every worker thread.
pub struct PreparedQuery {
    source: String,
    query: Query,
    unopt: Mft,
    opt: Mft,
    meta: QueryMeta,
    /// Lazily computed: GCX compilation is not needed on the serving path.
    gcx_supported: OnceLock<bool>,
    /// Lazily computed single-lane prefilter plan (projection fixpoint +
    /// matched-label set), shared by every run of this query alone.
    solo_plan: OnceLock<crate::multi::QuerySetPlan>,
}

impl PreparedQuery {
    /// Run the full compilation pipeline on `source` under the default
    /// [`CompileLimits`].
    pub fn compile(source: &str) -> Result<PreparedQuery, PrepareError> {
        PreparedQuery::compile_with_limits(source, CompileLimits::default())
    }

    /// [`PreparedQuery::compile`] under explicit compile-time bounds.
    pub fn compile_with_limits(
        source: &str,
        limits: CompileLimits,
    ) -> Result<PreparedQuery, PrepareError> {
        if source.len() > limits.max_source_bytes {
            return Err(PrepareError::TooLarge {
                what: "query source",
                size: source.len(),
                limit: limits.max_source_bytes,
            });
        }
        let mut compile_times = StageTimes::default();
        let mut timed = |stage: Stage, start: Instant| {
            compile_times.add(
                stage,
                start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            );
        };
        let t = Instant::now();
        let query = parse_query(source)?;
        timed(Stage::Parse, t);
        let t = Instant::now();
        let unopt = translate(&query)?;
        timed(Stage::Translate, t);
        if unopt.size() > limits.max_translated_size {
            return Err(PrepareError::TooLarge {
                what: "translated MFT",
                size: unopt.size(),
                limit: limits.max_translated_size,
            });
        }
        let t = Instant::now();
        let (opt, opt_stats) = optimize_with_stats(unopt.clone());
        timed(Stage::Optimize, t);
        let meta = QueryMeta {
            states: opt.state_count(),
            size: opt.size(),
            max_params: opt.max_params(),
            is_ft: opt.is_ft(),
            opt_stats,
            compile_times,
        };
        Ok(PreparedQuery {
            source: source.to_string(),
            query,
            unopt,
            opt,
            meta,
            gcx_supported: OnceLock::new(),
            solo_plan: OnceLock::new(),
        })
    }

    /// The query text this was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed MinXQuery AST.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The optimized transducer (what serving should run).
    pub fn mft(&self) -> &Mft {
        &self.opt
    }

    /// The raw §3 translation, before the §4.1 optimizations.
    pub fn unoptimized(&self) -> &Mft {
        &self.unopt
    }

    /// Compile-time metadata.
    pub fn meta(&self) -> &QueryMeta {
        &self.meta
    }

    /// The single-lane [`crate::QuerySetPlan`] of this query, computed on
    /// first use and cached — a hot serving path (e.g. `/query?doc=` tape
    /// replays) must not re-run the projection fixpoint per request.
    pub fn solo_plan(&self) -> &crate::multi::QuerySetPlan {
        self.solo_plan
            .get_or_init(|| crate::multi::QuerySetPlan::new([self.mft()]))
    }

    /// Whether the GCX-substitute baseline accepts this query. Computed on
    /// first call and cached (a full GCX compile, which the serving path
    /// never needs).
    pub fn gcx_supported(&self) -> bool {
        *self
            .gcx_supported
            .get_or_init(|| foxq_gcx::GcxEngine::new(&self.query, foxq_xml::NullSink).is_ok())
    }

    /// Convenience: stream one XML document through the optimized MFT,
    /// under the serving limits ([`StreamLimits::serving`]) — a prepared
    /// query may come from untrusted text, so a single run is never allowed
    /// to materialize unbounded output.
    pub fn run_to_string(&self, input: &[u8]) -> Result<StreamRunOutput, StreamError> {
        self.run_to_string_with_limits(input, StreamLimits::serving())
    }

    /// [`PreparedQuery::run_to_string`] under explicit stream limits.
    pub fn run_to_string_with_limits(
        &self,
        input: &[u8],
        limits: StreamLimits,
    ) -> Result<StreamRunOutput, StreamError> {
        run_streaming_to_string_with_limits(&self.opt, input, limits)
    }

    /// Stream one XML document through the optimized MFT, delivering each
    /// irrevocable output prefix to `deliver` as soon as no pending state
    /// call remains to its left — the first chunk typically leaves before
    /// the document has finished arriving. The concatenation of delivered
    /// prefixes is byte-identical to [`PreparedQuery::run_to_string`]'s
    /// output (proptest-guarded). Runs under the serving limits, like
    /// `run_to_string`.
    ///
    /// A `deliver` failure aborts the run as
    /// [`StreamError::Emit`](foxq_core::stream::StreamError::Emit).
    pub fn run_streaming(
        &self,
        input: &[u8],
        deliver: impl FnMut(&[u8]) -> std::io::Result<()>,
    ) -> Result<StreamStats, StreamError> {
        self.run_streaming_with_limits(input, StreamLimits::serving(), deliver)
    }

    /// [`PreparedQuery::run_streaming`] under explicit stream limits.
    pub fn run_streaming_with_limits(
        &self,
        input: &[u8],
        limits: StreamLimits,
        deliver: impl FnMut(&[u8]) -> std::io::Result<()>,
    ) -> Result<StreamStats, StreamError> {
        let sink = foxq_core::emit::EmitWriter::new(deliver);
        let reader = foxq_xml::XmlReader::new(input);
        let (sink, stats) = foxq_core::stream::run_streaming_emit(&self.opt, reader, sink, limits)?;
        sink.finish()?;
        Ok(stats)
    }
}

/// Counters of a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (no compilation).
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Successful compilations performed on behalf of the cache.
    pub compiles: u64,
    /// Entries evicted to respect the capacity.
    pub evictions: u64,
}

struct CacheEntry {
    prepared: Arc<PreparedQuery>,
    /// Logical timestamp of the last lookup (LRU order).
    stamp: u64,
}

/// Hash-keyed LRU cache of [`PreparedQuery`]s.
///
/// Keys are the FxHash of the trimmed query text; on a hash hit the stored
/// source is compared so a collision degrades to a recompile, never a wrong
/// answer. Failed compilations are not cached (the error propagates and the
/// next lookup retries).
pub struct QueryCache {
    capacity: usize,
    limits: CompileLimits,
    map: FxHashMap<u64, CacheEntry>,
    tick: u64,
    stats: CacheStats,
}

impl QueryCache {
    /// A cache holding at most `capacity` prepared queries (min 1), under
    /// the default [`CompileLimits`].
    pub fn new(capacity: usize) -> Self {
        Self::with_limits(capacity, CompileLimits::default())
    }

    /// [`QueryCache::new`] with explicit compile-time bounds applied to
    /// every compilation the cache performs.
    pub fn with_limits(capacity: usize, limits: CompileLimits) -> Self {
        QueryCache {
            capacity: capacity.max(1),
            limits,
            map: FxHashMap::default(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn key(source: &str) -> u64 {
        source_key(source)
    }

    /// Look up `source`, compiling (and inserting) on a miss.
    pub fn get_or_compile(&mut self, source: &str) -> Result<Arc<PreparedQuery>, PrepareError> {
        self.lookup_or_compile(source).map(|(prepared, _)| prepared)
    }

    /// [`QueryCache::get_or_compile`], also reporting whether the lookup
    /// was a hit (`true`) or had to compile (`false`) — so a tracing
    /// caller can attribute compile time to the request that paid it.
    pub fn lookup_or_compile(
        &mut self,
        source: &str,
    ) -> Result<(Arc<PreparedQuery>, bool), PrepareError> {
        let key = Self::key(source);
        self.tick += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            if entry.prepared.source().trim() == source.trim() {
                entry.stamp = self.tick;
                self.stats.hits += 1;
                return Ok((entry.prepared.clone(), true));
            }
            // FxHash collision between different texts: recompile in place.
        }
        self.stats.misses += 1;
        let prepared = Arc::new(PreparedQuery::compile_with_limits(source, self.limits)?);
        self.stats.compiles += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let replaced = self.map.insert(
            key,
            CacheEntry {
                prepared: prepared.clone(),
                stamp: self.tick,
            },
        );
        if replaced.is_some() {
            // A hash collision displaced a different query's entry; count it
            // so the observable stats stay honest.
            self.stats.evictions += 1;
        }
        Ok((prepared, false))
    }

    fn evict_lru(&mut self) {
        if let Some(&key) = self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k) {
            self.map.remove(&key);
            self.stats.evictions += 1;
        }
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/compile/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A cloneable, thread-safe handle to a process-wide [`QueryCache`].
///
/// This is what a multi-worker server shares: every worker compiles through
/// the same cache (so a hot query compiles once per process, not once per
/// connection), and an observability endpoint reads [`CacheStats`] from the
/// same handle without interrupting serving. The mutex is held across the
/// compilation itself — deliberately: concurrent first requests for the
/// same hot query then compile it once instead of racing, and compilation
/// is bounded by [`CompileLimits`] so the hold time is too. Compilation is
/// pure, so a poisoned lock (a panicking worker) cannot have corrupted
/// entries and is simply cleared.
#[derive(Clone)]
pub struct SharedQueryCache {
    inner: Arc<std::sync::Mutex<QueryCache>>,
}

impl SharedQueryCache {
    /// A shared cache holding at most `capacity` prepared queries.
    pub fn new(capacity: usize) -> Self {
        Self::with_limits(capacity, CompileLimits::default())
    }

    /// [`SharedQueryCache::new`] with explicit compile-time bounds.
    pub fn with_limits(capacity: usize, limits: CompileLimits) -> Self {
        SharedQueryCache {
            inner: Arc::new(std::sync::Mutex::new(QueryCache::with_limits(
                capacity, limits,
            ))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueryCache> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Look up `source`, compiling (and inserting) on a miss.
    pub fn get_or_compile(&self, source: &str) -> Result<Arc<PreparedQuery>, PrepareError> {
        self.lock().get_or_compile(source)
    }

    /// [`SharedQueryCache::get_or_compile`], also reporting whether the
    /// lookup was a hit (see [`QueryCache::lookup_or_compile`]).
    pub fn lookup_or_compile(
        &self,
        source: &str,
    ) -> Result<(Arc<PreparedQuery>, bool), PrepareError> {
        self.lock().lookup_or_compile(source)
    }

    /// Hit/miss/compile/eviction counters (a consistent snapshot).
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.lock().capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "<o>{$input/a}</o>";
    const Q2: &str = "<o>{$input/b}</o>";
    const Q3: &str = "<o>{$input/c}</o>";

    #[test]
    fn prepared_query_compiles_and_runs() {
        let p = PreparedQuery::compile(Q1).unwrap();
        assert!(p.meta().states > 0);
        assert!(p.gcx_supported());
        assert!(p.mft().size() <= p.unoptimized().size());
        let out = p.run_to_string(b"<a>x</a><b/>").unwrap();
        assert_eq!(out.output, "<o><a>x</a></o>");
    }

    #[test]
    fn gcx_support_is_detected() {
        // Top-level bare $input is outside the GCX fragment.
        let p = PreparedQuery::compile("<o>{$input}</o>").unwrap();
        assert!(!p.gcx_supported());
    }

    #[test]
    fn compile_errors_propagate() {
        assert!(matches!(
            PreparedQuery::compile("for $x return $x"),
            Err(PrepareError::Syntax(_))
        ));
        // $a is a let variable: paths from lets are rejected by translation.
        assert!(matches!(
            PreparedQuery::compile("let $a := $input/x return <o>{$a/b}</o>"),
            Err(PrepareError::Translate(_))
        ));
    }

    #[test]
    fn gcx_probe_hits_the_inlining_cap_on_nested_lets() {
        // Each let doubles the uses of the previous variable; the GCX
        // support probe must hit gcx's inlining size cap instead of
        // materializing a 2^n-node query on the serving path. (n is kept
        // moderate because the §4.1 optimizer has its own super-linear
        // behaviour on this family — a ROADMAP item, independent of gcx.)
        let mut src = String::from("let $a0 := $input/r/a return ");
        for i in 1..=12 {
            let p = i - 1;
            src.push_str(&format!("let $a{i} := <x>{{$a{p}}}{{$a{p}}}</x> return "));
        }
        src.push_str("<o>{$a12}</o>");
        let prepared = PreparedQuery::compile(&src).unwrap();
        assert!(!prepared.gcx_supported());
    }

    use foxq_core::opt::nested_doubling_lets;

    #[test]
    fn untrusted_doubling_nest_compiles_bounded_and_runs_bounded() {
        // Compile must stay polynomial (the optimizer's inlining growth
        // budget keeps the doubled value as a shared parameter)…
        let p = PreparedQuery::compile(&nested_doubling_lets(40)).unwrap();
        assert!(p.meta().size < 100_000, "compiled size {}", p.meta().size);
        // …and a run cannot materialize the 2^40-node output: the output
        // budget aborts it (the shared-graph engine would otherwise emit
        // forever from a tiny live arena).
        let limits = StreamLimits {
            max_output_events: 10_000,
            ..StreamLimits::serving()
        };
        match p.run_to_string_with_limits(b"<r/>", limits) {
            Err(StreamError::OutputLimit { max_output_events }) => {
                assert_eq!(max_output_events, 10_000)
            }
            Err(e) => panic!("expected OutputLimit, got {e}"),
            Ok(out) => panic!("expected OutputLimit, got {} bytes", out.output.len()),
        }
    }

    #[test]
    fn oversized_query_sources_are_rejected() {
        let big = format!("<o>{}</o>", " ".repeat(2 << 20));
        match PreparedQuery::compile(&big) {
            Err(PrepareError::TooLarge { what, .. }) => assert_eq!(what, "query source"),
            other => panic!("expected TooLarge, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn cache_hits_skip_compilation() {
        let mut cache = QueryCache::new(4);
        let a = cache.get_or_compile(Q1).unwrap();
        let b = cache.get_or_compile(Q1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Whitespace-normalized source maps to the same entry.
        let c = cache.get_or_compile("  <o>{$input/a}</o>\n").unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.compiles), (2, 1, 1));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = QueryCache::new(2);
        cache.get_or_compile(Q1).unwrap();
        cache.get_or_compile(Q2).unwrap();
        cache.get_or_compile(Q1).unwrap(); // Q1 now more recent than Q2
        cache.get_or_compile(Q3).unwrap(); // evicts Q2
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let before = cache.stats().compiles;
        cache.get_or_compile(Q1).unwrap(); // still cached
        assert_eq!(cache.stats().compiles, before);
        cache.get_or_compile(Q2).unwrap(); // was evicted: recompiles
        assert_eq!(cache.stats().compiles, before + 1);
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let mut cache = QueryCache::new(2);
        assert!(cache.get_or_compile("for $x return $x").is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().compiles, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn prepared_query_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<PreparedQuery>();
        check::<SharedQueryCache>();
    }

    #[test]
    fn shared_cache_serves_concurrent_workers() {
        let cache = SharedQueryCache::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for q in [Q1, Q2, Q1, Q3, Q1] {
                        cache.get_or_compile(q).unwrap();
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 20);
        // Every thread resolves every query; at least the per-thread
        // repeats hit (two workers may race to compile the same text, so
        // the compile count is only bounded, not exact).
        assert!(
            s.compiles >= 3 && s.compiles <= 12,
            "compiles {}",
            s.compiles
        );
        assert!(s.hits >= 8, "hits {}", s.hits);
    }

    #[test]
    fn cache_compile_limits_are_enforced() {
        let mut cache = QueryCache::with_limits(
            2,
            CompileLimits {
                max_source_bytes: 64,
                ..CompileLimits::default()
            },
        );
        let big = format!("<o>{}</o>", " ".repeat(100));
        assert!(matches!(
            cache.get_or_compile(&big),
            Err(PrepareError::TooLarge { .. })
        ));
    }
}
