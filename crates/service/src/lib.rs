//! # foxq-service — the serving layer over the streaming pipeline
//!
//! The library crates reproduce the paper's pipeline for *one* query over
//! *one* document, recompiling from scratch on every call. This crate turns
//! that pipeline into something a server can sit on:
//!
//! * [`PreparedQuery`] — parse → translate → §4.1-optimize **once**, keep
//!   the optimized [`foxq_core::Mft`] plus metadata (state/rule counts,
//!   GCX-baseline support);
//! * [`QueryCache`] — hash-keyed LRU over prepared queries, so repeated
//!   query texts never recompile (hits/misses/compiles are observable via
//!   [`CacheStats`]);
//! * [`MultiQueryEngine`] — N queries answered in a **single pass** of the
//!   input event stream, with per-query statistics and error isolation;
//! * [`BatchDriver`] — M documents × N queries across `std::thread::scope`
//!   workers, with a deterministic report.
//!
//! The same engine drives the `foxq batch` CLI subcommand.
//!
//! ## Quick start: three queries, one document, one pass
//!
//! ```
//! use foxq_service::{run_multi_to_strings, QueryCache};
//!
//! let mut cache = QueryCache::new(16);
//! let queries: Vec<_> = [
//!     "<names>{$input/site/people/person/name/text()}</names>",
//!     "<ids>{$input/site/people/person/p_id/text()}</ids>",
//!     "<regions>{$input/site/regions/*}</regions>",
//! ]
//! .iter()
//! .map(|src| cache.get_or_compile(src).unwrap())
//! .collect();
//!
//! let doc = "<site><regions><asia/><europe/></regions><people>\
//!            <person><p_id>p0</p_id><name>Jim</name></person>\
//!            <person><p_id>p1</p_id><name>Li</name></person>\
//!            </people></site>";
//!
//! // One parse of `doc` answers all three queries.
//! let run = run_multi_to_strings(&queries, doc.as_bytes()).unwrap();
//! let outputs: Vec<&str> = run
//!     .results
//!     .iter()
//!     .map(|r| r.as_ref().unwrap().0.as_str())
//!     .collect();
//! assert_eq!(outputs[0], "<names>JimLi</names>");
//! assert_eq!(outputs[1], "<ids>p0p1</ids>");
//! assert_eq!(outputs[2], "<regions><asia></asia><europe></europe></regions>");
//!
//! // Recompiling the first query is a cache hit — no second translation.
//! cache.get_or_compile(queries[0].source()).unwrap();
//! assert_eq!(cache.stats().compiles, 3);
//! assert_eq!(cache.stats().hits, 1);
//! ```

pub mod batch;
pub mod multi;
pub mod prepared;
pub mod profile;

pub use batch::{BatchCell, BatchDriver, BatchReport, CorpusReport};
pub use multi::{
    run_multi, run_multi_emit, run_multi_emit_observed, run_multi_on_forest, run_multi_on_tape,
    run_multi_on_tape_emit, run_multi_on_tape_emit_observed, run_multi_on_tape_observed,
    run_multi_on_tape_scan, run_multi_on_tape_scan_emit, run_multi_on_tape_scan_observed,
    run_multi_to_strings, run_multi_with_limits, run_multi_with_plan, run_multi_with_plan_observed,
    MultiQueryEngine, MultiRun, ObservedMultiRun, QuerySetPlan,
};
pub use prepared::{
    source_key, CacheStats, CompileLimits, PrepareError, PreparedQuery, QueryCache, QueryMeta,
    SharedQueryCache,
};
pub use profile::{Aggregate, HotState, ProfileRegistry, QueryProfile, RunSample};
