//! Criterion bench for Theorem 1: translation (and optimization) time per
//! benchmark query — linear in |P| and far below any execution time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foxq_bench::QUERIES;
use foxq_core::opt::optimize;
use foxq_core::translate::translate;
use foxq_xquery::parse_query;

fn bench_translate(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("translate");
    for (name, src) in QUERIES {
        let q = parse_query(src).unwrap();
        group.bench_with_input(BenchmarkId::new("translate", name), &q, |b, q| {
            b.iter(|| translate(q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("translate_optimize", name), &q, |b, q| {
            b.iter(|| optimize(translate(q).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
