//! Healthy-client throughput while slow-loris connections trickle.
//!
//! The attack shape: N connections each send a valid request head at
//! ~1 byte/s and never finish it. Under the old blocking worker pool every
//! such connection parked a worker inside `read` for the full read timeout,
//! so N ≥ threads wedged the server. Under the epoll reactor a trickling
//! head is just a buffer the reactor appends to on readiness — workers
//! never see it — so healthy-client throughput should be flat in N.
//!
//! Two measured points: healthy keep-alive `/query` round-trips with 0 and
//! with 64 stalled connections, plus the derived ratio. The CI-enforced
//! bound lives in `tests/slow_loris.rs`; this bench is for watching the
//! numbers.

use criterion::{criterion_group, criterion_main, summarize, BenchmarkId, Criterion};
use foxq_server::client::{self, Client};
use foxq_server::{Server, ServerConfig};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY: &str = "<o>{$input/site/people/person/name/text()}</o>";
const DOC: &[u8] = b"<site><regions><africa><item/></africa></regions>\
    <people><person><name>Jim</name></person><person><name>Li</name></person></people></site>";

fn start_server() -> foxq_server::ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // Long enough that the stalled connections outlive the measurement
        // (the reactor's head deadline would otherwise reap them, which is
        // the defense but not what we are measuring).
        read_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    })
    .expect("bind")
    .start()
    .expect("start")
}

/// A pack of slow-loris connections: each opens, sends a partial head, and
/// then trickles one header byte per second until dropped.
struct LorisPack {
    stop: Arc<AtomicBool>,
    feeder: Option<std::thread::JoinHandle<()>>,
}

impl LorisPack {
    fn hold(addr: std::net::SocketAddr, count: usize) -> LorisPack {
        let mut conns = Vec::with_capacity(count);
        for _ in 0..count {
            let mut c = Client::connect(addr).expect("loris connect");
            c.raw_writer()
                .write_all(b"GET /healthz HTTP/1.1\r\nhost: loris\r\nx-drip: ")
                .expect("loris head start");
            c.raw_writer().flush().ok();
            conns.push(c);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let feeder = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_secs(1));
                for c in &mut conns {
                    // ~1 byte/s of header, never completing the line.
                    let _ = c.raw_writer().write_all(b"a");
                }
            }
        });
        LorisPack {
            stop,
            feeder: Some(feeder),
        }
    }
}

impl Drop for LorisPack {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(f) = self.feeder.take() {
            let _ = f.join();
        }
    }
}

fn report_reqs_per_sec(label: &str, requests: u64, samples: &[Duration]) -> Option<f64> {
    let summary = summarize(samples)?;
    let rps = requests as f64 / summary.mean.as_secs_f64();
    println!(
        "{label}: {rps:.0} req/s (mean over {} samples)",
        summary.samples
    );
    Some(rps)
}

fn bench_slow_loris(criterion: &mut Criterion) {
    let handle = start_server();
    let addr = handle.local_addr();
    let target = client::query_target(QUERY);

    let mut group = criterion.benchmark_group("slow_loris");
    group.sample_size(10);

    const ROUNDTRIPS: u64 = 200;
    let mut all_samples = Vec::new();
    for stalled in [0usize, 64] {
        let pack = (stalled > 0).then(|| LorisPack::hold(addr, stalled));
        let mut samples = Vec::new();
        group.bench_function(BenchmarkId::new("healthy_under_stalled", stalled), |b| {
            let mut c = Client::connect(addr).expect("connect");
            b.iter(|| {
                let start = Instant::now();
                for _ in 0..ROUNDTRIPS {
                    let r = c.request("POST", &target, &[], DOC).expect("request");
                    assert_eq!(r.status, 200);
                }
                samples.push(start.elapsed());
            })
        });
        drop(pack);
        all_samples.push((stalled, samples));
    }
    group.finish();

    let rates: Vec<(usize, f64)> = all_samples
        .iter()
        .filter_map(|(stalled, samples)| {
            report_reqs_per_sec(
                &format!("healthy_under_stalled/{stalled}"),
                ROUNDTRIPS,
                samples,
            )
            .map(|rps| (*stalled, rps))
        })
        .collect();
    if let [(_, unloaded), (_, loaded)] = rates.as_slice() {
        println!(
            "slow_loris: 64 stalled connections keep {:.0}% of unloaded throughput",
            100.0 * loaded / unloaded
        );
    }
    handle.shutdown();
}

criterion_group!(benches, bench_slow_loris);
criterion_main!(benches);
