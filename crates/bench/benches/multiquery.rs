//! The serving-layer claim behind `foxq-service`: answering N queries with
//! one `MultiQueryEngine` pass beats N separate passes, because the input
//! scan (and its event dispatch) is paid once. Groups compare `solo` (N
//! passes) vs `multi` (one pass, N lanes) for growing N, plus the
//! prepared-query cache against from-scratch compilation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foxq_core::stream::run_streaming_on_forest;
use foxq_core::Mft;
use foxq_gen::Dataset;
use foxq_service::{run_multi_on_forest, PreparedQuery, QueryCache};
use foxq_xml::NullSink;

/// Streamable XMark-style queries with distinct hot paths.
const QUERIES: [&str; 4] = [
    "<o>{ for $p in $input/site/people/person return <n>{$p/name/text()}</n> }</o>",
    "<o>{ for $a in $input/site/open_auctions/open_auction return
       <b>{ for $i in $a/bidder/increase return <i>{$i/text()}</i> }</b> }</o>",
    "<o>{$input/site/regions/*}</o>",
    "<o>{$input//keyword}</o>",
];

fn bench_multiquery(criterion: &mut Criterion) {
    let bytes: usize = std::env::var("FOXQ_BENCH_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 20);
    let input = foxq_gen::generate(Dataset::Xmark, bytes, 0xF0E5);
    let prepared: Vec<PreparedQuery> = QUERIES
        .iter()
        .map(|q| PreparedQuery::compile(q).unwrap())
        .collect();

    let mut group = criterion.benchmark_group("multiquery_one_pass");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        let mfts: Vec<&Mft> = prepared.iter().take(n).map(|p| p.mft()).collect();
        group.bench_with_input(BenchmarkId::new("solo_passes", n), &mfts, |b, mfts| {
            b.iter(|| {
                for m in mfts {
                    run_streaming_on_forest(m, &input, NullSink).unwrap();
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("multi_single_pass", n),
            &mfts,
            |b, mfts| {
                b.iter(|| {
                    let sinks: Vec<_> = (0..mfts.len()).map(|_| NullSink).collect();
                    run_multi_on_forest(mfts, &input, sinks)
                })
            },
        );
    }
    group.finish();

    let mut group = criterion.benchmark_group("prepared_query_cache");
    group.bench_function("compile_uncached", |b| {
        b.iter(|| PreparedQuery::compile(QUERIES[1]).unwrap())
    });
    group.bench_function("compile_cached", |b| {
        let mut cache = QueryCache::new(QUERIES.len());
        cache.get_or_compile(QUERIES[1]).unwrap();
        b.iter(|| cache.get_or_compile(QUERIES[1]).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_multiquery);
criterion_main!(benches);
