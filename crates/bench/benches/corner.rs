//! Criterion benches for Figure 4(g)–(i): the corner-case queries (double,
//! fourstar, deepdup) over the four Table-1 datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foxq_bench::{compile, query_source, run_engine, Engine};
use foxq_gen::Dataset;

fn bench_corner(criterion: &mut Criterion) {
    let bytes: usize = std::env::var("FOXQ_BENCH_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512 << 10);
    for (fig, qname) in [("4g", "double"), ("4h", "fourstar"), ("4i", "deepdup")] {
        let c = compile(qname, query_source(qname));
        let mut group = criterion.benchmark_group(format!("fig{fig}_{qname}"));
        group.sample_size(10);
        for dataset in Dataset::ALL {
            let input = foxq_gen::generate(dataset, bytes, 0xF0E5);
            for engine in [Engine::MftOpt, Engine::Gcx] {
                if run_engine(engine, &c, &input).is_none() {
                    continue;
                }
                let id = format!("{}_{}", engine.name(), dataset.name().replace(' ', "_"));
                group.bench_with_input(BenchmarkId::from_parameter(id), &c, |b, c| {
                    b.iter(|| run_engine(engine, c, &input).unwrap())
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_corner);
criterion_main!(benches);
