//! Criterion benches for Figure 4(a)–(f): the XMark queries, one group per
//! panel, engines side by side at a fixed input size (default 1 MiB;
//! override with FOXQ_BENCH_BYTES).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foxq_bench::{compile, query_source, run_engine, Engine};
use foxq_gen::Dataset;

fn bench_figures(criterion: &mut Criterion) {
    let bytes: usize = std::env::var("FOXQ_BENCH_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 20);
    let input = foxq_gen::generate(Dataset::Xmark, bytes, 0xF0E5);
    for (fig, qname) in [
        ("4a", "Q1"),
        ("4b", "Q2"),
        ("4c", "Q4"),
        ("4d", "Q13"),
        ("4e", "Q16"),
        ("4f", "Q17"),
    ] {
        let c = compile(qname, query_source(qname));
        let mut group = criterion.benchmark_group(format!("fig{fig}_{qname}"));
        group.sample_size(10);
        for engine in Engine::ALL {
            if run_engine(engine, &c, &input).is_none() {
                continue; // GCX N/A on Q4
            }
            group.bench_with_input(BenchmarkId::from_parameter(engine.name()), &c, |b, c| {
                b.iter(|| run_engine(engine, c, &input).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
