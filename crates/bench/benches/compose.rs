//! Criterion benches for the composition/optimization hot paths:
//!
//! * the Lemma 2 complexity claim — stay-move composition scales
//!   quadratically while the classical construction is exponential in the
//!   chain length k;
//! * interpretation of the accumulator-encoded FT∘FT composition (the
//!   memoizing shared-value evaluator's headline case);
//! * `opt::optimize` on the nested value-doubling let adversary at
//!   n = 12/16/20 (polynomial only thanks to the inlining growth budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foxq_core::mft::XVar;
use foxq_core::opt::optimize_with_stats;
use foxq_core::translate::translate;
use foxq_tt::{compose_ft_ft, compose_tt_tt, compose_tt_tt_naive, Mtt, TNode};
use foxq_xquery::parse_query;

fn chain_pair(k: usize) -> (Mtt, Mtt) {
    let mut m1 = Mtt::new();
    let a = m1.alphabet.intern_elem("a");
    let b = m1.alphabet.intern_elem("b");
    let q0 = m1.add_state("q0", 0);
    m1.initial = q0;
    let mut rhs = TNode::call(q0, XVar::X1, vec![]);
    for _ in 0..k {
        rhs = TNode::sym(b, rhs, TNode::Eps);
    }
    m1.rules[q0.idx()].by_sym.insert(a, rhs);
    let mut m2 = Mtt::new();
    let b2 = m2.alphabet.intern_elem("b");
    let c = m2.alphabet.intern_elem("c");
    let p0 = m2.add_state("p0", 0);
    m2.initial = p0;
    m2.rules[p0.idx()].by_sym.insert(
        b2,
        TNode::sym(
            c,
            TNode::call(p0, XVar::X1, vec![]),
            TNode::call(p0, XVar::X1, vec![]),
        ),
    );
    (m1, m2)
}

fn bench_compose(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("lemma2_composition");
    group.sample_size(10);
    for k in [4usize, 8, 12] {
        let (m1, m2) = chain_pair(k);
        group.bench_with_input(BenchmarkId::new("stay", k), &k, |b, _| {
            b.iter(|| compose_tt_tt(&m1, &m2))
        });
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
            b.iter(|| compose_tt_tt_naive(&m1, &m2, 100_000_000).unwrap())
        });
    }
    group.finish();
}

fn bench_ftft_interpretation(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ftft_interpretation");
    group.sample_size(10);
    let doubler = foxq_core::parse_mft("q(%t(x1) x2) -> q(x2) q(x2); q(eps) -> a();").unwrap();
    let composed = compose_ft_ft(&doubler, &doubler);
    let input = foxq_forest::term::parse_forest("w x y z").unwrap();
    group.bench_function("doubling_twice/4", |b| {
        b.iter(|| foxq_core::run_mft(&composed, &input).unwrap())
    });
    group.finish();
}

use foxq_core::opt::nested_doubling_lets;

fn bench_opt_nested_lets(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("opt_nested_lets");
    group.sample_size(10);
    for n in [12usize, 16, 20] {
        let q = parse_query(&nested_doubling_lets(n)).unwrap();
        let m = translate(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("optimize", n), &n, |b, _| {
            b.iter(|| optimize_with_stats(m.clone()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compose,
    bench_ftft_interpretation,
    bench_opt_nested_lets
);
criterion_main!(benches);
