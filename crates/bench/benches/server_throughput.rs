//! Throughput of the `foxq-server` HTTP front-end: requests per second on a
//! small document, measured through real sockets on loopback.
//!
//! Two axes:
//!
//! * `keepalive_roundtrips` — one persistent connection, R sequential
//!   `/query` round-trips per sample (per-request cost without the TCP
//!   handshake);
//! * `concurrent_connections` — C client threads, each a fresh connection
//!   doing one round-trip (the accept-queue + worker-pool path).
//!
//! Each benchmark line also prints the derived requests/s (the criterion
//! stand-in reports robust per-sample timing; req/s = requests ÷ mean).

use criterion::{criterion_group, criterion_main, summarize, BenchmarkId, Criterion};
use foxq_server::client::{self, Client};
use foxq_server::{Server, ServerConfig};
use std::time::{Duration, Instant};

const QUERY: &str = "<o>{$input/site/people/person/name/text()}</o>";
const DOC: &[u8] = b"<site><regions><africa><item/></africa></regions>\
    <people><person><name>Jim</name></person><person><name>Li</name></person></people></site>";

fn start_server() -> foxq_server::ServerHandle {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    })
    .expect("bind")
    .start()
    .expect("start")
}

/// Report requests/s for a measured closure that performs `requests`
/// round-trips per call.
fn report_reqs_per_sec(label: &str, requests: u64, samples: &[Duration]) {
    if let Some(summary) = summarize(samples) {
        let rps = requests as f64 / summary.mean.as_secs_f64();
        println!(
            "{label}: {rps:.0} req/s (mean over {} samples)",
            summary.samples
        );
    }
}

fn bench_server_throughput(criterion: &mut Criterion) {
    let handle = start_server();
    let addr = handle.local_addr();
    let target = client::query_target(QUERY);

    let mut group = criterion.benchmark_group("server_throughput");
    group.sample_size(10);

    const ROUNDTRIPS: u64 = 200;
    let mut keepalive_samples = Vec::new();
    group.bench_function(BenchmarkId::new("keepalive_roundtrips", ROUNDTRIPS), |b| {
        let mut c = Client::connect(addr).expect("connect");
        b.iter(|| {
            let start = Instant::now();
            for _ in 0..ROUNDTRIPS {
                let r = c.request("POST", &target, &[], DOC).expect("request");
                assert_eq!(r.status, 200);
            }
            keepalive_samples.push(start.elapsed());
        })
    });

    const CONNECTIONS: u64 = 32;
    let mut concurrent_samples = Vec::new();
    group.bench_function(
        BenchmarkId::new("concurrent_connections", CONNECTIONS),
        |b| {
            b.iter(|| {
                let start = Instant::now();
                std::thread::scope(|scope| {
                    for _ in 0..CONNECTIONS {
                        scope.spawn(|| {
                            let r = client::post(addr, &target, DOC).expect("request");
                            assert_eq!(r.status, 200);
                        });
                    }
                });
                concurrent_samples.push(start.elapsed());
            })
        },
    );
    group.finish();

    report_reqs_per_sec("keepalive_roundtrips", ROUNDTRIPS, &keepalive_samples);
    report_reqs_per_sec("concurrent_connections", CONNECTIONS, &concurrent_samples);
    handle.shutdown();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
