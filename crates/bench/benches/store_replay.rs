//! The foxq-store claim: serving a hot corpus from pre-parsed FET tapes
//! beats re-tokenizing the XML on every query, the close-offset seek path
//! beats even that by never decoding prefilter-withheld subtrees, and the
//! FET2 label skip index beats the seek path by never *visiting* frames
//! the query set cannot match.
//!
//! Five engines over the same XMark document and the same prefilter-
//! eligible query:
//!
//! * `reparse`           — XML bytes → `XmlReader` → engine;
//! * `replay`            — tape → `TapeReader` → engine (no tokenization);
//! * `replay_seek`       — linear scan with seek-based subtree skipping
//!   (the FET1 read path, forced on a FET2 tape);
//! * `replay_index`      — FET2 merged posting-list cursor, in-memory;
//! * `replay_index_mmap` — the same cursor over an mmapped tape file.
//!
//! The PR's acceptance bars (enforced in `tests/perf_smoke.rs`): the seek
//! replay is ≥ 3× faster than the reparse, and the index cursor is ≥ 2×
//! faster than the seek replay.

use criterion::{criterion_group, criterion_main, Criterion};
use foxq_core::stream::StreamLimits;
use foxq_forest::ForestStats;
use foxq_gen::Dataset;
use foxq_service::{
    run_multi, run_multi_on_tape, run_multi_on_tape_scan, PreparedQuery, QuerySetPlan,
};
use foxq_store::{ingest_xml_to_tape, TapeReader};
use foxq_xml::{forest_to_xml_string, NullSink, XmlReader};
use std::io::Cursor;

/// A child-path navigator: prefilter-eligible, touches ~1/9 of XMark.
const QUERY: &str = "<o>{$input/site/people/person/name/text()}</o>";

fn bench_store_replay(criterion: &mut Criterion) {
    let bytes: usize = std::env::var("FOXQ_BENCH_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2 << 20);
    let forest = foxq_gen::generate(Dataset::Xmark, bytes, 0xF0E5);
    let xml = forest_to_xml_string(&forest).into_bytes();
    let (out, info, _) = ingest_xml_to_tape(&xml[..], Cursor::new(Vec::new())).unwrap();
    let tape = out.into_inner();
    let tape_file =
        std::env::temp_dir().join(format!("foxq-bench-replay-{}.fet", std::process::id()));
    std::fs::write(&tape_file, &tape).unwrap();
    let prepared = PreparedQuery::compile(QUERY).unwrap();
    let mft = prepared.mft();
    let plan = QuerySetPlan::new([mft]);
    eprintln!(
        "store_replay: {} XML bytes, {} tape bytes ({} index), {} events (XMark {:?} nodes)",
        xml.len(),
        tape.len(),
        info.index_bytes,
        info.events,
        ForestStats::of_forest(&forest).nodes,
    );

    let mut group = criterion.benchmark_group("store_replay");
    group.sample_size(10);
    group.bench_function("reparse", |b| {
        b.iter(|| run_multi(&[mft], XmlReader::new(&xml[..]), vec![NullSink]).unwrap())
    });
    group.bench_function("replay", |b| {
        b.iter(|| {
            let reader = TapeReader::new(Cursor::new(&tape[..])).unwrap();
            run_multi(&[mft], reader, vec![NullSink]).unwrap()
        })
    });
    group.bench_function("replay_seek", |b| {
        b.iter(|| {
            let reader = TapeReader::new(Cursor::new(&tape[..])).unwrap();
            run_multi_on_tape_scan(
                &[mft],
                reader,
                vec![NullSink],
                StreamLimits::default(),
                &plan,
            )
            .unwrap()
        })
    });
    group.bench_function("replay_index", |b| {
        b.iter(|| {
            let reader = TapeReader::new(Cursor::new(&tape[..])).unwrap();
            let run = run_multi_on_tape(
                &[mft],
                reader,
                vec![NullSink],
                StreamLimits::default(),
                &plan,
            )
            .unwrap();
            assert!(run.index_skipped_bytes > 0, "index path not taken");
            run
        })
    });
    group.bench_function("replay_index_mmap", |b| {
        b.iter(|| {
            let reader = TapeReader::open_file(&tape_file).unwrap();
            let run = run_multi_on_tape(
                &[mft],
                reader,
                vec![NullSink],
                StreamLimits::default(),
                &plan,
            )
            .unwrap();
            assert!(run.index_skipped_bytes > 0, "index path not taken");
            run
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&tape_file);
}

criterion_group!(benches, bench_store_replay);
criterion_main!(benches);
