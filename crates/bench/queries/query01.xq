(: XMark Q1 — the name of the person with id "person0".
   The comparison predicate keeps a parameter alive after optimization
   (unlike Q2/Q13, which satisfy Theorem 2 and optimize to FTs). :)
<out>{
  for $b in /site/people/person[./person_id/text() = "person0"]
  return <name>{$b/name/text()}</name>
}</out>
