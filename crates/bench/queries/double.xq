(: Corner case (Fig. 4(g)) — the output needs the input twice. A
   streaming engine must buffer the whole document for the second copy;
   GCX supports the query but degrades to full buffering. :)
<double><r1>{/site}</r1>{/site}</double>
