(: Corner case (Fig. 4(h)) — four nested descendant-or-self wildcards;
   every node at depth >= 4 is emitted once per derivation. :)
<fourstar>{$input//*//*//*//*}</fourstar>
