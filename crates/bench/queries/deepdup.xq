(: Corner case (Fig. 4(i)) — duplication of deep subtrees: each closed
   auction's annotation is copied twice into nested constructors. :)
<deepdup>{
  for $x in /site/closed_auctions/closed_auction
  return <r><r1>{$x/annotation}</r1>{$x/annotation}</r>
}</deepdup>
