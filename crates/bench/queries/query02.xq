(: XMark Q2 — the increases of all bids. Predicate-free: Theorem 2
   applies and the optimizer removes every parameter. :)
<out>{
  for $b in /site/open_auctions/open_auction/bidder/increase
  return <increase>{$b/text()}</increase>
}</out>
