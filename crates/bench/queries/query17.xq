(: XMark Q17 — people without a homepage (emptiness predicate). :)
<out>{
  for $p in /site/people/person[empty(./homepage/text())]
  return <person><name>{$p/name/text()}</name></person>
}</out>
