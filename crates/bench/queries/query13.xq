(: XMark Q13 — names of items registered in Australia, with their
   descriptions. Predicate-free: optimizes to an FT (Theorem 2). :)
<out>{
  for $i in /site/regions/australia/item
  return <item><name>{$i/name/text()}</name>{$i/description}</item>
}</out>
