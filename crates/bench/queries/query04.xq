(: XMark Q4 — auctions where person1 bid before person2. Uses the
   following-sibling axis, which the GCX baseline does not support:
   the paper's Figure 4(c) reports "N/A" for GCX on this query. :)
<out>{
  for $b in /site/open_auctions/open_auction
    [./bidder[./personref/personref_person/text() = "person1"]
     /following-sibling::bidder/personref/personref_person/text() = "person2"]
  return <history>{$b/reserve/text()}</history>
}</out>
