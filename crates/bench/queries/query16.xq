(: XMark Q16 — sellers of closed auctions whose annotation carries the
   deep keyword chain (a long existence predicate). :)
<out>{
  for $a in /site/closed_auctions/closed_auction
    [./annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword]
  return <person>{$a/seller/seller_person/text()}</person>
}</out>
