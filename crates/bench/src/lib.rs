//! Benchmark harness reproducing the paper's evaluation (§5).
//!
//! The nine benchmark programs of Fig. 3 are embedded verbatim from
//! `queries/`; [`run_engine`] executes one (query, engine, document) cell of
//! the paper's Figure 4 and reports elapsed time plus the engine's own
//! buffer peak — the two series in every plot. The `figures` binary prints
//! the tables; the Criterion benches cover per-figure timing at a fixed
//! size.

use foxq_core::opt::{optimize_with_stats, OptStats};
use foxq_core::stream::run_streaming_on_forest;
use foxq_core::translate::translate;
use foxq_core::Mft;
use foxq_forest::{forest_size, Forest};
use foxq_gcx::run_gcx_on_forest;
use foxq_gen::Dataset;
use foxq_xml::CountingSink;
use foxq_xquery::{eval_query, parse_query, Query};
use std::time::{Duration, Instant};

/// The benchmark programs of Fig. 3, in paper order.
pub const QUERIES: [(&str, &str); 9] = [
    ("Q1", include_str!("../queries/query01.xq")),
    ("Q2", include_str!("../queries/query02.xq")),
    ("Q4", include_str!("../queries/query04.xq")),
    ("Q13", include_str!("../queries/query13.xq")),
    ("Q16", include_str!("../queries/query16.xq")),
    ("Q17", include_str!("../queries/query17.xq")),
    ("double", include_str!("../queries/double.xq")),
    ("fourstar", include_str!("../queries/fourstar.xq")),
    ("deepdup", include_str!("../queries/deepdup.xq")),
];

/// Fetch a benchmark query's source by name.
pub fn query_source(name: &str) -> &'static str {
    QUERIES
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown benchmark query {name}"))
        .1
}

/// The engines compared in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Translated MFT without §4.1 optimizations, streaming.
    MftNoOpt,
    /// Translated + optimized MFT, streaming.
    MftOpt,
    /// The GCX-substitute baseline.
    Gcx,
    /// The in-memory reference evaluator (full buffering, like Saxon's role
    /// in the paper: a non-streaming comparison point).
    Dom,
}

impl Engine {
    pub const ALL: [Engine; 4] = [Engine::MftNoOpt, Engine::MftOpt, Engine::Gcx, Engine::Dom];

    pub fn name(self) -> &'static str {
        match self {
            Engine::MftNoOpt => "mft-noopt",
            Engine::MftOpt => "mft-opt",
            Engine::Gcx => "gcx",
            Engine::Dom => "dom",
        }
    }
}

/// A compiled benchmark query: parsed once, translated once.
pub struct Compiled {
    pub name: String,
    pub query: Query,
    pub unopt: Mft,
    pub opt: Mft,
    pub opt_stats: OptStats,
}

/// Parse and translate one benchmark query.
pub fn compile(name: &str, src: &str) -> Compiled {
    let query = parse_query(src).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
    let unopt = translate(&query).unwrap_or_else(|e| panic!("translating {name}: {e}"));
    let (opt, opt_stats) = optimize_with_stats(unopt.clone());
    Compiled {
        name: name.to_string(),
        query,
        unopt,
        opt,
        opt_stats,
    }
}

/// Compile all nine benchmark queries.
pub fn compile_all() -> Vec<Compiled> {
    QUERIES.iter().map(|(n, s)| compile(n, s)).collect()
}

/// Result of one engine run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    pub elapsed: Duration,
    /// Peak engine-internal buffer in nodes (the paper's memory series).
    pub peak_nodes: usize,
    /// Output size (nodes).
    pub output_nodes: u64,
}

/// Run one cell of Figure 4. `None` means the engine does not support the
/// query (GCX on Q4 — the paper's "N/A").
pub fn run_engine(engine: Engine, c: &Compiled, input: &Forest) -> Option<RunResult> {
    match engine {
        Engine::MftNoOpt | Engine::MftOpt => {
            let m = if engine == Engine::MftOpt {
                &c.opt
            } else {
                &c.unopt
            };
            let start = Instant::now();
            let (sink, stats) = run_streaming_on_forest(m, input, CountingSink::default()).ok()?;
            Some(RunResult {
                elapsed: start.elapsed(),
                peak_nodes: stats.peak_live_nodes,
                output_nodes: sink.nodes,
            })
        }
        Engine::Gcx => {
            let start = Instant::now();
            match run_gcx_on_forest(&c.query, input, CountingSink::default()) {
                Ok((sink, stats)) => Some(RunResult {
                    elapsed: start.elapsed(),
                    peak_nodes: stats.peak_buffered_nodes,
                    output_nodes: sink.nodes,
                }),
                Err(foxq_gcx::GcxError::Unsupported(_)) => None,
                Err(e) => panic!("gcx failed on {}: {e}", c.name),
            }
        }
        Engine::Dom => {
            let start = Instant::now();
            let out = eval_query(&c.query, input).ok()?;
            let out_nodes = forest_size(&out) as u64;
            Some(RunResult {
                elapsed: start.elapsed(),
                // The DOM engine buffers the entire input plus its output.
                peak_nodes: forest_size(input) + forest_size(&out),
                output_nodes: out_nodes,
            })
        }
    }
}

/// Input documents for one figure: XMark for 4(a)–(f), the four datasets of
/// Table 1 for the corner-case figures 4(g)–(i).
pub fn figure_inputs(fig: &str, sizes: &[usize], seed: u64) -> Vec<(String, Forest)> {
    match fig {
        "4g" | "4h" | "4i" => Dataset::ALL
            .iter()
            .map(|&d| {
                let bytes = sizes.first().copied().unwrap_or(1 << 20);
                (d.name().to_string(), foxq_gen::generate(d, bytes, seed))
            })
            .collect(),
        _ => sizes
            .iter()
            .map(|&b| {
                (
                    format!("{:.1}MiB", b as f64 / (1 << 20) as f64),
                    foxq_gen::generate(Dataset::Xmark, b, seed),
                )
            })
            .collect(),
    }
}

/// Map figure ids to queries (Figure 4's panels).
pub fn figure_query(fig: &str) -> &'static str {
    match fig {
        "4a" => "Q1",
        "4b" => "Q2",
        "4c" => "Q4",
        "4d" => "Q13",
        "4e" => "Q16",
        "4f" => "Q17",
        "4g" => "double",
        "4h" => "fourstar",
        "4i" => "deepdup",
        other => panic!("unknown figure {other}"),
    }
}

/// All figure panels in order.
pub const FIGURES: [&str; 9] = ["4a", "4b", "4c", "4d", "4e", "4f", "4g", "4h", "4i"];

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_forest::ForestStats;
    use foxq_xml::forest_to_xml_string;

    #[test]
    fn all_benchmark_queries_compile() {
        for c in compile_all() {
            c.unopt.validate().unwrap();
            c.opt.validate().unwrap();
            assert!(c.opt.size() <= c.unopt.size(), "{}", c.name);
        }
    }

    #[test]
    fn q2_and_q13_optimize_to_fts() {
        // The paper: Q2 and Q13 satisfy Theorem 2 ⇒ parameters all removed.
        for name in ["Q2", "Q13"] {
            let c = compile(name, query_source(name));
            assert!(c.opt.is_ft(), "{name} should optimize to an FT");
        }
        // Q1 has a predicate ⇒ parameters remain.
        let q1 = compile("Q1", query_source("Q1"));
        assert!(!q1.opt.is_ft());
    }

    #[test]
    fn engines_agree_on_small_xmark() {
        let input = foxq_gen::generate(Dataset::Xmark, 60_000, 11);
        for c in compile_all() {
            let reference = eval_query(&c.query, &input).unwrap();
            let expected = forest_to_xml_string(&reference);
            // Streaming engines, via ForestSink for exact comparison.
            for (label, m) in [("unopt", &c.unopt), ("opt", &c.opt)] {
                let (sink, _) = foxq_core::stream::run_streaming_on_forest(
                    m,
                    &input,
                    foxq_xml::ForestSink::new(),
                )
                .unwrap();
                assert_eq!(
                    forest_to_xml_string(&sink.into_forest()),
                    expected,
                    "{} {label}",
                    c.name
                );
            }
            match foxq_gcx::run_gcx_on_forest(&c.query, &input, foxq_xml::ForestSink::new()) {
                Ok((sink, _)) => {
                    assert_eq!(
                        forest_to_xml_string(&sink.into_forest()),
                        expected,
                        "{} gcx",
                        c.name
                    );
                }
                Err(foxq_gcx::GcxError::Unsupported(_)) => {
                    assert_eq!(c.name, "Q4", "only Q4 may be unsupported by gcx");
                }
                Err(e) => panic!("gcx error on {}: {e}", c.name),
            }
        }
    }

    #[test]
    fn memory_shapes_match_figure4() {
        // Optimized MFT memory is flat in input size on Q1; unoptimized
        // grows; gcx flat too (the paper's central claim).
        let c = compile("Q1", query_source("Q1"));
        let small = foxq_gen::generate(Dataset::Xmark, 40_000, 5);
        let big = foxq_gen::generate(Dataset::Xmark, 400_000, 5);
        assert!(ForestStats::of_forest(&big).nodes > 5 * ForestStats::of_forest(&small).nodes);
        let peak = |e, f: &Forest| run_engine(e, &c, f).unwrap().peak_nodes;
        let opt_ratio = peak(Engine::MftOpt, &big) as f64 / peak(Engine::MftOpt, &small) as f64;
        let noopt_ratio =
            peak(Engine::MftNoOpt, &big) as f64 / peak(Engine::MftNoOpt, &small) as f64;
        let gcx_ratio = peak(Engine::Gcx, &big) as f64 / peak(Engine::Gcx, &small) as f64;
        assert!(opt_ratio < 2.0, "opt grew: {opt_ratio}");
        assert!(gcx_ratio < 2.0, "gcx grew: {gcx_ratio}");
        assert!(noopt_ratio > 4.0, "noopt flat: {noopt_ratio}");
    }

    #[test]
    fn gcx_is_na_on_q4_but_mft_runs_it() {
        let c = compile("Q4", query_source("Q4"));
        let input = foxq_gen::generate(Dataset::Xmark, 50_000, 3);
        assert!(run_engine(Engine::Gcx, &c, &input).is_none());
        assert!(run_engine(Engine::MftOpt, &c, &input).is_some());
    }
}
