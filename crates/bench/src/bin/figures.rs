//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p foxq-bench --release --bin figures            # everything
//! cargo run -p foxq-bench --release --bin figures -- --fig 4a
//! cargo run -p foxq-bench --release --bin figures -- --table 1
//! cargo run -p foxq-bench --release --bin figures -- --ablation
//! cargo run -p foxq-bench --release --bin figures -- --compose
//! ```
//!
//! Input sizes default to 1, 2, 4, 8 MiB (the paper sweeps 100 MB – 100 GB
//! on server hardware; the *shapes* — who wins, what stays flat, what grows
//! — are size-independent). Override with `FOXQ_SIZES=1,4,16` (MiB) or
//! `--sizes 1,4,16`.
//!
//! `--csv <path>` additionally appends one machine-readable row per engine
//! cell (`section,query,engine,input,input_bytes,ns,peak_nodes,output_nodes,
//! samples,ns_mean,ns_stddev,ns_mad,outliers_dropped`) for offline
//! statistics and plotting. `--samples N` (default 1) repeats each cell N
//! times; `ns` is then the median and the trailing columns carry the robust
//! statistics of the criterion stand-in (mean ± stddev over the samples
//! surviving a 3.5·MAD outlier cut). Rows cover the sections that run
//! engines over inputs — the figure panels, the ablation, and the
//! `--store` tape comparison (engines `reparse`, `replay`, `replay-seek`,
//! `replay-index`, `replay-index-mmap`);
//! `--table 1` (dataset shapes) and `--compose` (composition construction
//! timings) print to stdout only.

use criterion::Summary;
use foxq_bench::{
    compile, figure_inputs, figure_query, query_source, run_engine, Engine, RunResult, FIGURES,
};
use foxq_forest::{Forest, ForestStats};
use foxq_gen::Dataset;
use foxq_tt::{compose_tt_tt, compose_tt_tt_naive, Mtt, TNode};
use std::io::Write;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = parse_sizes(&args);
    let samples = parse_samples(&args);
    let mut csv = CsvLog::from_args(&args);
    let mut did_something = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                i += 1;
                let fig = args.get(i).expect("--fig needs an argument (4a..4i|all)");
                if fig == "all" {
                    for f in FIGURES {
                        figure(f, &sizes, samples, &mut csv);
                    }
                } else {
                    figure(fig, &sizes, samples, &mut csv);
                }
                did_something = true;
            }
            "--table" => {
                i += 1;
                table1(&sizes);
                did_something = true;
            }
            "--ablation" => {
                ablation(&sizes, samples, &mut csv);
                did_something = true;
            }
            "--store" => {
                store_replay(&sizes, samples, &mut csv);
                did_something = true;
            }
            "--compose" => {
                compose_table();
                did_something = true;
            }
            "--sizes" | "--csv" | "--samples" => {
                i += 1; // value parsed up front
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    if !did_something {
        table1(&sizes);
        for f in FIGURES {
            figure(f, &sizes, samples, &mut csv);
        }
        ablation(&sizes, samples, &mut csv);
        store_replay(&sizes, samples, &mut csv);
        compose_table();
    }
}

/// Per-run CSV sink behind `--csv <path>`; a no-op when absent.
struct CsvLog {
    out: Option<std::io::BufWriter<std::fs::File>>,
}

impl CsvLog {
    fn from_args(args: &[String]) -> CsvLog {
        let path = args
            .iter()
            .position(|a| a == "--csv")
            .map(|i| args.get(i + 1).expect("--csv needs a path").clone());
        let out = path.map(|p| {
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(&p).unwrap_or_else(|e| panic!("cannot create {p}: {e}")),
            );
            writeln!(
                f,
                "section,query,engine,input,input_bytes,ns,peak_nodes,output_nodes,\
                 samples,ns_mean,ns_stddev,ns_mad,outliers_dropped"
            )
            .expect("csv write");
            f
        });
        CsvLog { out }
    }

    fn enabled(&self) -> bool {
        self.out.is_some()
    }

    fn row(
        &mut self,
        section: &str,
        query: &str,
        engine: &str,
        input: &str,
        input_bytes: usize,
        cell: Option<&(RunResult, Summary)>,
    ) {
        let Some(out) = self.out.as_mut() else {
            return;
        };
        match cell {
            Some((r, s)) => writeln!(
                out,
                "{section},{query},{engine},{input},{input_bytes},{},{},{},{},{},{},{},{}",
                s.median.as_nanos(),
                r.peak_nodes,
                r.output_nodes,
                s.samples,
                s.mean.as_nanos(),
                s.std_dev.as_nanos(),
                s.mad.as_nanos(),
                s.outliers_dropped,
            ),
            None => writeln!(
                out,
                "{section},{query},{engine},{input},{input_bytes},NA,NA,NA,NA,NA,NA,NA,NA",
            ),
        }
        .expect("csv write");
    }
}

/// Serialized size of an input (only computed when the CSV log is active).
fn input_bytes(csv: &CsvLog, input: &Forest) -> usize {
    if csv.enabled() {
        ForestStats::of_forest(input).xml_bytes
    } else {
        0
    }
}

/// Measure one engine cell `samples` times: the run whose time is closest
/// to the median is the representative (its memory/output counters are
/// deterministic anyway), the summary carries the timing statistics.
fn run_cell(
    engine: Engine,
    c: &foxq_bench::Compiled,
    input: &Forest,
    samples: usize,
) -> Option<(RunResult, Summary)> {
    let mut runs = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        runs.push(run_engine(engine, c, input)?);
    }
    let durations: Vec<Duration> = runs.iter().map(|r| r.elapsed).collect();
    let summary = criterion::summarize(&durations).expect("at least one sample");
    let rep = *runs
        .iter()
        .min_by_key(|r| r.elapsed.abs_diff(summary.median))
        .expect("at least one run");
    Some((rep, summary))
}

fn parse_samples(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--samples needs a positive number"))
        .map(|n: usize| n.max(1))
        .unwrap_or(1)
}

fn parse_sizes(args: &[String]) -> Vec<usize> {
    let spec = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("FOXQ_SIZES").ok())
        .unwrap_or_else(|| "1,2,4,8".to_string());
    spec.split(',')
        .map(|s| {
            let mib: f64 = s.trim().parse().expect("sizes are MiB numbers");
            (mib * (1 << 20) as f64) as usize
        })
        .collect()
}

/// One panel of Figure 4.
fn figure(fig: &str, sizes: &[usize], samples: usize, csv: &mut CsvLog) {
    let qname = figure_query(fig);
    let c = compile(qname, query_source(qname));
    let corner = matches!(fig, "4g" | "4h" | "4i");
    println!();
    if corner {
        println!(
            "== Figure 4({}): `{}` query over the Table-1 datasets ==",
            &fig[1..],
            qname
        );
    } else {
        println!(
            "== Figure 4({}): XMark {} — series vs input size ==",
            &fig[1..],
            qname
        );
    }
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "input", "noopt.ms", "opt.ms", "gcx.ms", "noopt.mem", "opt.mem", "gcx.mem"
    );
    for (label, input) in figure_inputs(fig, sizes, 0xF0E5) {
        let bytes = input_bytes(csv, &input);
        let mut cell = |e| {
            let r = run_cell(e, &c, &input, samples);
            csv.row(fig, qname, e.name(), &label, bytes, r.as_ref());
            match r {
                Some((r, s)) => (
                    format!("{:.1}", s.median.as_secs_f64() * 1e3),
                    format!("{}", r.peak_nodes),
                ),
                None => ("N/A".to_string(), "N/A".to_string()),
            }
        };
        let (t_no, m_no) = cell(Engine::MftNoOpt);
        let (t_opt, m_opt) = cell(Engine::MftOpt);
        let (t_gcx, m_gcx) = cell(Engine::Gcx);
        println!(
            "{label:<22} {t_no:>12} {t_opt:>12} {t_gcx:>12} {m_no:>12} {m_opt:>12} {m_gcx:>12}"
        );
    }
    println!("(mem = engine-internal peak buffered nodes; the paper plots MB — shapes match)");
}

/// Table 1: the input files.
fn table1(sizes: &[usize]) {
    let bytes = sizes.last().copied().unwrap_or(1 << 20);
    println!(
        "\n== Table 1: input XML files (generated at ~{} MiB) ==",
        bytes >> 20
    );
    println!(
        "{:<26} {:>12} {:>8} {:>12}",
        "dataset", "size(bytes)", "depth", "nodes"
    );
    for d in Dataset::ALL {
        let f = foxq_gen::generate(d, bytes, 0xF0E5);
        let s = ForestStats::of_forest(&f);
        println!(
            "{:<26} {:>12} {:>8} {:>12}",
            d.name(),
            s.xml_bytes,
            s.depth,
            s.nodes
        );
    }
    println!("(paper: XMark depth 13, TreeBank depth 37, Medline/Protein depth 8;");
    println!(" all attribute nodes encoded as element nodes)");
}

/// §4.1 ablation: effect of the optimizations per query.
fn ablation(sizes: &[usize], samples: usize, csv: &mut CsvLog) {
    let bytes = sizes.first().copied().unwrap_or(1 << 20);
    let input = foxq_gen::generate(Dataset::Xmark, bytes, 0xF0E5);
    let in_bytes = input_bytes(csv, &input);
    println!(
        "\n== Section 4.1 ablation: unoptimized vs optimized MFT (XMark, {:.1} MiB) ==",
        bytes as f64 / (1 << 20) as f64
    );
    println!(
        "{:<9} {:>7} {:>7} {:>7} {:>7} {:>10} {:>10} {:>11} {:>11}",
        "query", "st.un", "st.opt", "pm.un", "pm.opt", "t.un(ms)", "t.opt(ms)", "mem.un", "mem.opt"
    );
    for (name, src) in foxq_bench::QUERIES {
        let c = compile(name, src);
        let un = run_cell(Engine::MftNoOpt, &c, &input, samples).unwrap();
        let op = run_cell(Engine::MftOpt, &c, &input, samples).unwrap();
        csv.row(
            "ablation",
            name,
            Engine::MftNoOpt.name(),
            "xmark",
            in_bytes,
            Some(&un),
        );
        csv.row(
            "ablation",
            name,
            Engine::MftOpt.name(),
            "xmark",
            in_bytes,
            Some(&op),
        );
        println!(
            "{:<9} {:>7} {:>7} {:>7} {:>7} {:>10.1} {:>10.1} {:>11} {:>11}",
            name,
            c.unopt.state_count(),
            c.opt.state_count(),
            c.unopt.max_params(),
            c.opt.max_params(),
            un.1.median.as_secs_f64() * 1e3,
            op.1.median.as_secs_f64() * 1e3,
            un.0.peak_nodes,
            op.0.peak_nodes,
        );
    }
    println!("(st = states, pm = max parameters; the paper reports ~1 order of magnitude)");
}

/// foxq-store: reparse vs tape replay vs seek-skipping scan vs the FET2
/// merged index cursor (in-memory and mmapped), on a prefilter-eligible
/// XMark navigator.
fn store_replay(sizes: &[usize], samples: usize, csv: &mut CsvLog) {
    use foxq_core::stream::StreamLimits;
    use foxq_service::{
        run_multi, run_multi_on_tape, run_multi_on_tape_scan, PreparedQuery, QuerySetPlan,
    };
    use foxq_store::{ingest_xml_to_tape, TapeReader};
    use std::io::Cursor;

    const QNAME: &str = "people-names";
    const QUERY: &str = "<o>{$input/site/people/person/name/text()}</o>";
    let prepared = PreparedQuery::compile(QUERY).expect("store query compiles");
    let mft = prepared.mft();
    let plan = QuerySetPlan::new([mft]);

    println!("\n== foxq-store: XML reparse vs FET2 tape replay (query {QNAME}) ==");
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "input",
        "reparse.ms",
        "replay.ms",
        "seek.ms",
        "index.ms",
        "mmap.ms",
        "speedup",
        "skip.bytes"
    );
    for &size in sizes {
        let forest = foxq_gen::generate(Dataset::Xmark, size, 0xF0E5);
        let xml = foxq_xml::forest_to_xml_string(&forest).into_bytes();
        let (out, _, _) =
            ingest_xml_to_tape(&xml[..], Cursor::new(Vec::new())).expect("tape write");
        let tape = out.into_inner();
        let tape_file =
            std::env::temp_dir().join(format!("foxq-figures-store-{}.fet", std::process::id()));
        std::fs::write(&tape_file, &tape).expect("tape file write");
        let label = format!("{:.1}MiB", size as f64 / (1 << 20) as f64);

        // Each engine returns (elapsed, peak_nodes, output_events, skipped_bytes).
        let measure = |f: &mut dyn FnMut() -> (usize, u64, u64)| {
            let mut durations = Vec::with_capacity(samples.max(1));
            let mut rep = (0usize, 0u64, 0u64);
            for _ in 0..samples.max(1) {
                let start = Instant::now();
                rep = f();
                durations.push(start.elapsed());
            }
            let summary = criterion::summarize(&durations).expect("at least one sample");
            (summary, rep)
        };
        // Skipped bytes: seek-jumped on the scan path, index-jumped on the
        // cursor path — never both nonzero in one run.
        let lane_stats = |run: &foxq_service::MultiRun<foxq_xml::NullSink>| {
            let (_, stats) = run.results[0].as_ref().expect("lane succeeded");
            (
                stats.peak_live_nodes,
                stats.output_events,
                run.seek_skipped_bytes + run.index_skipped_bytes,
            )
        };

        let (reparse_s, reparse_r) = measure(&mut || {
            let run = run_multi(
                &[mft],
                foxq_xml::XmlReader::new(&xml[..]),
                vec![foxq_xml::NullSink],
            )
            .expect("reparse run");
            lane_stats(&run)
        });
        let (replay_s, replay_r) = measure(&mut || {
            let reader = TapeReader::new(Cursor::new(&tape[..])).expect("tape open");
            let run = run_multi(&[mft], reader, vec![foxq_xml::NullSink]).expect("replay run");
            lane_stats(&run)
        });
        let (seek_s, seek_r) = measure(&mut || {
            let reader = TapeReader::new(Cursor::new(&tape[..])).expect("tape open");
            let run = run_multi_on_tape_scan(
                &[mft],
                reader,
                vec![foxq_xml::NullSink],
                StreamLimits::default(),
                &plan,
            )
            .expect("seek run");
            lane_stats(&run)
        });
        let (index_s, index_r) = measure(&mut || {
            let reader = TapeReader::new(Cursor::new(&tape[..])).expect("tape open");
            let run = run_multi_on_tape(
                &[mft],
                reader,
                vec![foxq_xml::NullSink],
                StreamLimits::default(),
                &plan,
            )
            .expect("index run");
            assert!(run.index_skipped_bytes > 0, "index path not taken");
            lane_stats(&run)
        });
        let (mmap_s, mmap_r) = measure(&mut || {
            let reader = TapeReader::open_file(&tape_file).expect("tape mmap");
            let run = run_multi_on_tape(
                &[mft],
                reader,
                vec![foxq_xml::NullSink],
                StreamLimits::default(),
                &plan,
            )
            .expect("mmap run");
            lane_stats(&run)
        });
        assert_eq!(reparse_r.1, seek_r.1, "outputs must agree");
        assert_eq!(reparse_r.1, index_r.1, "outputs must agree");
        assert_eq!(reparse_r.1, mmap_r.1, "outputs must agree");

        for (engine, s, r) in [
            ("reparse", &reparse_s, &reparse_r),
            ("replay", &replay_s, &replay_r),
            ("replay-seek", &seek_s, &seek_r),
            ("replay-index", &index_s, &index_r),
            ("replay-index-mmap", &mmap_s, &mmap_r),
        ] {
            let cell = (
                RunResult {
                    elapsed: s.median,
                    peak_nodes: r.0,
                    output_nodes: r.1,
                },
                *s,
            );
            csv.row("store", QNAME, engine, &label, xml.len(), Some(&cell));
        }
        println!(
            "{label:<22} {:>12.1} {:>12.1} {:>10.1} {:>10.1} {:>10.1} {:>9.1}x {:>12}",
            reparse_s.median.as_secs_f64() * 1e3,
            replay_s.median.as_secs_f64() * 1e3,
            seek_s.median.as_secs_f64() * 1e3,
            index_s.median.as_secs_f64() * 1e3,
            mmap_s.median.as_secs_f64() * 1e3,
            reparse_s.median.as_secs_f64() / index_s.median.as_secs_f64().max(1e-9),
            index_r.2,
        );
        let _ = std::fs::remove_file(&tape_file);
    }
    println!(
        "(replay skips tokenization; seek never decodes prefiltered subtrees; \
         index never visits unmatched frames; mmap reads the tape zero-copy)"
    );
}

/// §4.2 / Lemma 2: stay-move composition is quadratic, the classical
/// construction exponential.
fn compose_table() {
    println!("\n== Lemma 2: TT∘TT composition — stay moves vs classical (Rounds/Baker) ==");
    println!(
        "{:<4} {:>10} {:>12} {:>12} {:>14}",
        "k", "stay.size", "stay.μs", "naive.size", "naive.μs"
    );
    for k in [2usize, 4, 6, 8, 10, 12, 14] {
        let (m1, m2) = chain_pair(k);
        let t0 = Instant::now();
        let stay = compose_tt_tt(&m1, &m2);
        let stay_t = t0.elapsed();
        let t1 = Instant::now();
        let naive = compose_tt_tt_naive(&m1, &m2, 100_000_000);
        let naive_t = t1.elapsed();
        match naive {
            Some(n) => println!(
                "{:<4} {:>10} {:>12.1} {:>12} {:>14.1}",
                k,
                stay.size(),
                stay_t.as_secs_f64() * 1e6,
                n.size(),
                naive_t.as_secs_f64() * 1e6
            ),
            None => println!(
                "{:<4} {:>10} {:>12.1} {:>12} {:>14}",
                k,
                stay.size(),
                stay_t.as_secs_f64() * 1e6,
                "fuel-out",
                "-"
            ),
        }
    }
    println!("(M1: a→b^k chain; M2: b→c(·,·) spawner — the paper's §4.2 example family)");
}

/// The paper's composition example family: M1 rewrites each `a` into a chain
/// of k `b`s; M2 spawns two copies per `b`.
fn chain_pair(k: usize) -> (Mtt, Mtt) {
    use foxq_core::mft::XVar;
    let mut m1 = Mtt::new();
    let a = m1.alphabet.intern_elem("a");
    let b = m1.alphabet.intern_elem("b");
    let q0 = m1.add_state("q0", 0);
    m1.initial = q0;
    let mut rhs = TNode::call(q0, XVar::X1, vec![]);
    for _ in 0..k {
        rhs = TNode::sym(b, rhs, TNode::Eps);
    }
    m1.rules[q0.idx()].by_sym.insert(a, rhs);

    let mut m2 = Mtt::new();
    let b2 = m2.alphabet.intern_elem("b");
    let c = m2.alphabet.intern_elem("c");
    let p0 = m2.add_state("p0", 0);
    m2.initial = p0;
    m2.rules[p0.idx()].by_sym.insert(
        b2,
        TNode::sym(
            c,
            TNode::call(p0, XVar::X1, vec![]),
            TNode::call(p0, XVar::X1, vec![]),
        ),
    );
    (m1, m2)
}
