//! A tiny vendored Fx-style hasher.
//!
//! The transducer machinery hashes small interned ids (`u32` symbol and state
//! ids) on hot paths; SipHash is overkill there. Rather than pulling in an
//! external hashing crate (the project's dependency policy allows only
//! `rand`/`proptest`/`criterion`), we vendor the ~20-line multiply-rotate
//! hash used by rustc (`FxHasher`). It is deterministic, which also keeps
//! benchmark runs reproducible.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (the rustc "Fx" hash).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is a test");
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(1);
        b.write_u32(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m[&7], "seven");
        assert_eq!(m.len(), 2);
    }
}
