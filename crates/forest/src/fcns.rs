//! First-child/next-sibling binary encoding (Section 4.2, "Expressive Power").
//!
//! `fcns(ε) = ε` and `fcns(σ(f1) f2) = σ(fcns(f1), fcns(f2))`: the left child
//! of a binary node encodes the children forest, the right child encodes the
//! following siblings. [`BinTree`] is also the input/output type of the
//! binary-tree transducers in `foxq-tt`.

use crate::label::Label;
use crate::tree::{Forest, Tree};

/// A binary XML tree: internal nodes have exactly two children; leaves are ε.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum BinTree {
    /// The empty tree ε.
    Leaf,
    /// A labelled binary node.
    Node(Label, Box<BinTree>, Box<BinTree>),
}

impl BinTree {
    pub fn node(label: Label, l: BinTree, r: BinTree) -> Self {
        BinTree::Node(label, Box::new(l), Box::new(r))
    }

    /// Number of labelled nodes.
    pub fn size(&self) -> usize {
        match self {
            BinTree::Leaf => 0,
            BinTree::Node(_, l, r) => 1 + l.size() + r.size(),
        }
    }

    /// Height counting labelled nodes (ε has height 0).
    pub fn height(&self) -> usize {
        match self {
            BinTree::Leaf => 0,
            BinTree::Node(_, l, r) => 1 + l.height().max(r.height()),
        }
    }
}

impl std::fmt::Debug for BinTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinTree::Leaf => write!(f, "ε"),
            BinTree::Node(l, a, b) => write!(f, "{:?}({:?},{:?})", l, a, b),
        }
    }
}

/// Encode a forest as a binary tree.
pub fn fcns(f: &[Tree]) -> BinTree {
    // Build right-to-left so each step is O(1).
    let mut acc = BinTree::Leaf;
    for t in f.iter().rev() {
        acc = BinTree::node(t.label.clone(), fcns(&t.children), acc);
    }
    acc
}

/// Decode a binary tree back to a forest. Inverse of [`fcns`].
pub fn unfcns(b: &BinTree) -> Forest {
    let mut out = Vec::new();
    let mut cur = b;
    while let BinTree::Node(label, l, r) = cur {
        out.push(Tree {
            label: label.clone(),
            children: unfcns(l),
        });
        cur = r;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_forest;

    #[test]
    fn encodes_paper_shape() {
        // fcns(σ(f1) f2) = σ(fcns(f1), fcns(f2))
        let f = parse_forest("a(b c) d").unwrap();
        let b = fcns(&f);
        match &b {
            BinTree::Node(l, left, right) => {
                assert_eq!(&*l.name, "a");
                // left = fcns(b c), right = fcns(d)
                match left.as_ref() {
                    BinTree::Node(lb, _, sib) => {
                        assert_eq!(&*lb.name, "b");
                        assert!(
                            matches!(sib.as_ref(), BinTree::Node(lc, _, _) if &*lc.name == "c")
                        );
                    }
                    BinTree::Leaf => panic!("expected node"),
                }
                assert!(matches!(right.as_ref(), BinTree::Node(ld, _, _) if &*ld.name == "d"));
            }
            BinTree::Leaf => panic!("expected node"),
        }
    }

    #[test]
    fn roundtrip() {
        for src in ["", "a", "a(b(c) d) e(f)", r#"p("t1" q("t2"))"#] {
            let f = parse_forest(src).unwrap();
            assert_eq!(unfcns(&fcns(&f)), f, "roundtrip failed for {src:?}");
        }
    }

    #[test]
    fn size_is_preserved() {
        let f = parse_forest("a(b(c) d) e(f)").unwrap();
        assert_eq!(fcns(&f).size(), crate::tree::forest_size(&f));
    }

    #[test]
    fn height_of_list_becomes_linear() {
        // A flat forest of n trees becomes a right spine of height n.
        let f = parse_forest("a b c d").unwrap();
        assert_eq!(fcns(&f).height(), 4);
    }
}
