//! Shared forest values: an `Rc`-backed rope/DAG over [`Tree`]s.
//!
//! The denotational MFT semantics (§2.2) manipulates forests as *values*:
//! every accumulating parameter holds one, every state call returns one, and
//! a parameter used k times contributes its forest k times to the output.
//! Materializing those values eagerly (as `Vec<Tree>`) makes the
//! accumulator-heavy transducers produced by the §3 translation and the
//! §4.2 composition constructions exponentially slow: each parameter reuse
//! copies the whole forest. Streaming Tree Transducers get linear evaluation
//! from *copyless* register updates; this module provides the same
//! discipline for in-memory evaluation:
//!
//! * a [`Value`] is an immutable reference-counted node — empty, a single
//!   output tree over a child value, a pre-materialized forest chunk, or the
//!   concatenation of two values;
//! * **concatenation is O(1)** (a new binary node), **reuse is O(1)** (an
//!   `Rc` clone), and the materialized length/size of every node is cached
//!   at construction, so budget checks are O(1) too;
//! * values flatten to a plain [`Forest`] only at the output boundary, in
//!   time linear in the *materialized* output (each emitted node is built
//!   exactly once) and under an explicit node budget;
//! * a [`ValueInterner`] hash-conses construction, so values re-derived by
//!   the same constructor shape are pointer-equal. Pointer identity
//!   ([`Value::fingerprint`]) is then a sound, O(1) equality *witness*
//!   (equal fingerprints ⇒ equal forests; not conversely) — which is what
//!   makes memoizing evaluators (`foxq_core::interp`) effective: memo keys
//!   over parameter fingerprints hit whenever parameters are rebuilt the
//!   same way, not merely when they alias.
//!
//! The interner keeps every value it ever produced alive, so fingerprints
//! are stable for the interner's lifetime (one evaluator run). This is a
//! deliberate trade: peak memory is proportional to the number of *distinct*
//! values (bounded by evaluation steps), never to the unfolded output.

use crate::label::Label;
use crate::tree::{forest_size, Forest, Tree};
use crate::FxHashMap;
use std::rc::Rc;

/// A shared, immutable forest value (a rope/DAG of forest nodes).
///
/// Cloning is O(1) (an `Rc` bump). Build values through a [`ValueInterner`]
/// when pointer-equality of structurally equal values matters.
#[derive(Clone)]
pub struct Value(Rc<VNode>);

struct VNode {
    /// Number of top-level trees when materialized.
    len: u64,
    /// Total number of tree nodes when materialized (saturating).
    size: u64,
    repr: Repr,
}

enum Repr {
    /// The empty forest ε.
    Empty,
    /// A single tree: a labelled node over a child value.
    Node { label: Label, children: Value },
    /// A pre-materialized forest chunk (shared, never copied on reuse).
    Leaf(Rc<[Tree]>),
    /// The concatenation of two non-empty values.
    Concat(Value, Value),
}

impl VNode {
    /// Detach child values (leaving this node empty) so they can be dropped
    /// iteratively.
    fn take_children(&mut self, stack: &mut Vec<Value>) {
        match std::mem::replace(&mut self.repr, Repr::Empty) {
            Repr::Concat(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Repr::Node { children, .. } => stack.push(children),
            Repr::Empty | Repr::Leaf(_) => {}
        }
    }
}

/// Long concatenation spines and deep node chains would otherwise recurse
/// in the compiler-generated drop glue; unlink children iteratively.
impl Drop for VNode {
    fn drop(&mut self) {
        let mut stack = Vec::new();
        self.take_children(&mut stack);
        while let Some(v) = stack.pop() {
            if let Ok(mut sole) = Rc::try_unwrap(v.0) {
                sole.take_children(&mut stack);
            }
        }
    }
}

impl Value {
    /// The empty forest. (Prefer [`ValueInterner::empty`] inside evaluators
    /// so that all empties share one pointer.)
    pub fn empty() -> Value {
        Value(Rc::new(VNode {
            len: 0,
            size: 0,
            repr: Repr::Empty,
        }))
    }

    /// A single output tree with `children` as its child forest.
    pub fn node(label: Label, children: Value) -> Value {
        let size = children.size().saturating_add(1);
        Value(Rc::new(VNode {
            len: 1,
            size,
            repr: Repr::Node { label, children },
        }))
    }

    /// Wrap an already-materialized forest; the trees are shared from then
    /// on, never copied per reuse.
    pub fn from_forest(forest: Forest) -> Value {
        if forest.is_empty() {
            return Value::empty();
        }
        let len = forest.len() as u64;
        let size = forest_size(&forest) as u64;
        Value(Rc::new(VNode {
            len,
            size,
            repr: Repr::Leaf(forest.into()),
        }))
    }

    /// O(1) concatenation. Empty operands are elided, so ε is a neutral
    /// element structurally, not just semantically.
    pub fn concat(a: Value, b: Value) -> Value {
        if a.is_empty() {
            return b;
        }
        if b.is_empty() {
            return a;
        }
        let len = a.len().saturating_add(b.len());
        let size = a.size().saturating_add(b.size());
        Value(Rc::new(VNode {
            len,
            size,
            repr: Repr::Concat(a, b),
        }))
    }

    /// Number of top-level trees of the materialized forest (cached; O(1)).
    pub fn len(&self) -> u64 {
        self.0.len
    }

    /// Whether this value materializes to ε.
    pub fn is_empty(&self) -> bool {
        self.0.len == 0
    }

    /// Total node count of the materialized forest (cached; O(1);
    /// saturating, since shared doubling DAGs overflow `u64` easily).
    pub fn size(&self) -> u64 {
        self.0.size
    }

    /// Pointer identity of the underlying node: **equal fingerprints imply
    /// structurally equal forests** (never the converse — e.g. two concat
    /// bracketings of the same forest are distinct nodes), so fingerprints
    /// are sound for correctness-bearing equality but only best-effort for
    /// detecting equality. They stay valid as long as the value (or the
    /// [`ValueInterner`] that produced it, which keeps every value alive)
    /// does.
    pub fn fingerprint(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// Materialize into `out`, appending at most `max_nodes` tree nodes;
    /// returns [`BudgetExceeded`] (leaving `out` in a truncated but valid
    /// state) once the budget is crossed. Iterative — safe for deep DAGs
    /// and long concatenation spines.
    pub fn write_into(&self, out: &mut Forest, max_nodes: u64) -> Result<(), BudgetExceeded> {
        enum Task {
            Visit(Value),
            /// Close a `Node`: pop the child sink, push the finished tree.
            Close(Label),
        }
        let mut produced: u64 = 0;
        let mut sinks: Vec<Forest> = Vec::new();
        let mut stack = vec![Task::Visit(self.clone())];
        while let Some(task) = stack.pop() {
            match task {
                Task::Visit(v) => match &v.0.repr {
                    Repr::Empty => {}
                    Repr::Leaf(trees) => {
                        // The node count was cached at construction.
                        produced = produced.saturating_add(v.0.size);
                        if produced > max_nodes {
                            return Err(BudgetExceeded { max_nodes });
                        }
                        sinks
                            .last_mut()
                            .unwrap_or(&mut *out)
                            .extend(trees.iter().cloned());
                    }
                    Repr::Concat(a, b) => {
                        stack.push(Task::Visit(b.clone()));
                        stack.push(Task::Visit(a.clone()));
                    }
                    Repr::Node { label, children } => {
                        produced += 1;
                        if produced > max_nodes {
                            return Err(BudgetExceeded { max_nodes });
                        }
                        stack.push(Task::Close(label.clone()));
                        sinks.push(Vec::with_capacity(children.len().min(1024) as usize));
                        stack.push(Task::Visit(children.clone()));
                    }
                },
                Task::Close(label) => {
                    let children = sinks.pop().expect("matching child sink");
                    sinks
                        .last_mut()
                        .unwrap_or(&mut *out)
                        .push(Tree { label, children });
                }
            }
        }
        debug_assert!(sinks.is_empty());
        Ok(())
    }

    /// Materialize the whole value (no budget).
    pub fn to_forest(&self) -> Forest {
        let mut out = Vec::with_capacity(self.len().min(1024) as usize);
        self.write_into(&mut out, u64::MAX)
            .expect("u64::MAX budget cannot be exceeded");
        out
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Value(len={}, size={})", self.len(), self.size())
    }
}

/// The node budget of [`Value::write_into`] was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was in force.
    pub max_nodes: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "forest value exceeds {} materialized nodes",
            self.max_nodes
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Hash-consing constructor for [`Value`]s.
///
/// Two values built bottom-up through one interner by the *same shape* of
/// constructor calls share the same `Rc`, so [`Value::fingerprint`] hits
/// wherever an evaluator re-derives a value the same way. Hash-consing is
/// shape-sensitive, not fully canonical — differently bracketed
/// concatenations of the same forest keep distinct fingerprints — so
/// fingerprint equality *implies* structural equality (what memoization
/// soundness needs) but never decides it. The interner keeps everything it
/// produced alive, guaranteeing that fingerprints are never reused while it
/// exists.
#[derive(Default)]
pub struct ValueInterner {
    empty: Option<Value>,
    /// (label, children fingerprint) → node value.
    nodes: FxHashMap<(Label, usize), Value>,
    /// (left fingerprint, right fingerprint) → concat value.
    concats: FxHashMap<(usize, usize), Value>,
}

impl ValueInterner {
    pub fn new() -> ValueInterner {
        ValueInterner::default()
    }

    /// The canonical empty value.
    pub fn empty(&mut self) -> Value {
        self.empty.get_or_insert_with(Value::empty).clone()
    }

    /// The canonical `label(children)` tree value.
    pub fn node(&mut self, label: &Label, children: &Value) -> Value {
        self.nodes
            .entry((label.clone(), children.fingerprint()))
            .or_insert_with(|| Value::node(label.clone(), children.clone()))
            .clone()
    }

    /// The canonical concatenation `a·b` (ε operands elided).
    pub fn concat(&mut self, a: &Value, b: &Value) -> Value {
        if a.is_empty() {
            return b.clone();
        }
        if b.is_empty() {
            return a.clone();
        }
        self.concats
            .entry((a.fingerprint(), b.fingerprint()))
            .or_insert_with(|| Value::concat(a.clone(), b.clone()))
            .clone()
    }

    /// Number of distinct interned values (a live-memory proxy).
    pub fn interned_count(&self) -> usize {
        self.nodes.len() + self.concats.len() + usize::from(self.empty.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{forest_to_term, parse_forest};
    use crate::tree::elem;

    #[test]
    fn concat_is_o1_and_flattens_in_order() {
        let a = Value::from_forest(parse_forest("a b").unwrap());
        let c = Value::from_forest(parse_forest("c").unwrap());
        let v = Value::concat(a, c);
        assert_eq!(v.len(), 3);
        assert_eq!(forest_to_term(&v.to_forest()), "a() b() c()");
    }

    #[test]
    fn empty_is_neutral() {
        let e = Value::empty();
        let a = Value::from_forest(parse_forest("a").unwrap());
        let l = Value::concat(e.clone(), a.clone());
        let r = Value::concat(a.clone(), e);
        assert_eq!(l.fingerprint(), a.fingerprint());
        assert_eq!(r.fingerprint(), a.fingerprint());
    }

    #[test]
    fn node_wraps_children() {
        let kids = Value::from_forest(parse_forest("b c").unwrap());
        let v = Value::node(Label::elem("a"), kids);
        assert_eq!(v.len(), 1);
        assert_eq!(v.size(), 3);
        assert_eq!(forest_to_term(&v.to_forest()), "a(b() c())");
    }

    #[test]
    fn shared_doubling_sizes_without_materializing() {
        // v_{i+1} = v_i · v_i : after 40 doublings the materialized size is
        // ~10^12 nodes, but the DAG has 41 nodes and size() is O(1).
        let mut interner = ValueInterner::new();
        let base = Value::from_forest(parse_forest("x").unwrap());
        let mut v = base;
        for _ in 0..40 {
            v = interner.concat(&v.clone(), &v);
        }
        assert_eq!(v.len(), 1u64 << 40);
        assert_eq!(v.size(), 1u64 << 40);
        // Materializing it is refused cheaply under a budget.
        let mut out = Vec::new();
        let err = v.write_into(&mut out, 1_000).unwrap_err();
        assert_eq!(err.max_nodes, 1_000);
        assert!(forest_size(&out) as u64 <= 1_000);
    }

    #[test]
    fn interner_canonicalizes_structural_equality() {
        let mut i = ValueInterner::new();
        let e = i.empty();
        let a1 = i.node(&Label::elem("a"), &e);
        let a2 = i.node(&Label::elem("a"), &e);
        assert_eq!(a1.fingerprint(), a2.fingerprint());
        let c1 = i.concat(&a1, &a2);
        let c2 = i.concat(&a2, &a1);
        assert_eq!(c1.fingerprint(), c2.fingerprint());
        // Different labels stay distinct.
        let b = i.node(&Label::elem("b"), &e);
        assert_ne!(a1.fingerprint(), b.fingerprint());
        assert!(i.interned_count() >= 3);
    }

    #[test]
    fn deep_concat_spine_flattens_iteratively() {
        // 100k-long left-deep concat spine: recursion would overflow.
        let leaf = Value::from_forest(vec![elem("x", vec![])]);
        let mut v = Value::empty();
        for _ in 0..100_000 {
            v = Value::concat(v, leaf.clone());
        }
        assert_eq!(v.len(), 100_000);
        assert_eq!(v.to_forest().len(), 100_000);
    }

    #[test]
    fn write_into_budget_exact_boundary() {
        let v = Value::from_forest(parse_forest("a(b) c").unwrap());
        let mut out = Vec::new();
        assert!(v.write_into(&mut out, 3).is_ok());
        assert_eq!(out.len(), 2);
        let mut out = Vec::new();
        assert!(v.write_into(&mut out, 2).is_err());
    }
}
