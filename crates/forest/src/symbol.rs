//! Interned transducer alphabets.
//!
//! A forest transducer abstracts from the universal character alphabet by
//! fixing a finite set Σ of labels "of interest" (Section 2.2). [`Alphabet`]
//! interns those labels as dense [`SymId`]s so that rule lookup is a u32 hash
//! probe rather than a string comparison.

use crate::fxhash::FxHashMap;
use crate::label::{Label, NodeKind};
use std::fmt;

/// Interned id of a symbol σ ∈ Σ.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

impl fmt::Debug for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// A finite alphabet Σ of labels, interned to dense ids.
#[derive(Clone, Default)]
pub struct Alphabet {
    labels: Vec<Label>,
    index: FxHashMap<Label, SymId>,
}

impl Alphabet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a label, returning its id (idempotent).
    pub fn intern(&mut self, label: Label) -> SymId {
        if let Some(&id) = self.index.get(&label) {
            return id;
        }
        let id = SymId(self.labels.len() as u32);
        self.labels.push(label.clone());
        self.index.insert(label, id);
        id
    }

    /// Intern an element label by name.
    pub fn intern_elem(&mut self, name: &str) -> SymId {
        self.intern(Label::elem(name))
    }

    /// Intern a text label (string constant) by content.
    pub fn intern_text(&mut self, content: &str) -> SymId {
        self.intern(Label::text(content))
    }

    /// Look up a label without interning.
    pub fn lookup(&self, label: &Label) -> Option<SymId> {
        self.index.get(label).copied()
    }

    /// Look up by kind and name without building a `Label`.
    pub fn lookup_parts(&self, kind: NodeKind, name: &str) -> Option<SymId> {
        // Label construction is cheap enough here (Arc from &str allocates),
        // but this is only used on cold paths; hot paths pre-resolve SymIds.
        self.index
            .get(&Label {
                kind,
                name: name.into(),
            })
            .copied()
    }

    /// The label of an interned symbol.
    pub fn label(&self, id: SymId) -> &Label {
        &self.labels[id.0 as usize]
    }

    /// Number of interned symbols, |Σ|.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate over `(SymId, &Label)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SymId, &Label)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (SymId(i as u32), l))
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.labels.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let s1 = a.intern_elem("person");
        let s2 = a.intern_elem("person");
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn element_and_text_symbols_are_distinct() {
        let mut a = Alphabet::new();
        let e = a.intern_elem("person0");
        let t = a.intern_text("person0");
        assert_ne!(e, t);
        assert_eq!(a.len(), 2);
        assert_eq!(a.label(e).kind, NodeKind::Element);
        assert_eq!(a.label(t).kind, NodeKind::Text);
    }

    #[test]
    fn lookup_without_interning() {
        let mut a = Alphabet::new();
        let id = a.intern_elem("site");
        assert_eq!(a.lookup(&Label::elem("site")), Some(id));
        assert_eq!(a.lookup(&Label::elem("nope")), None);
        assert_eq!(a.lookup_parts(NodeKind::Element, "site"), Some(id));
    }
}
