//! Forest statistics: the quantities reported in the paper's Table 1
//! (serialized size and document depth), plus node counts.

use crate::label::NodeKind;
use crate::tree::Tree;

/// Summary statistics of a forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ForestStats {
    /// Total number of nodes (element + text).
    pub nodes: usize,
    /// Number of element nodes.
    pub elements: usize,
    /// Number of text nodes.
    pub text_nodes: usize,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Maximum depth (a root-only tree has depth 1).
    pub depth: usize,
    /// Estimated serialized XML size in bytes
    /// (`<name>` + `</name>` per element + text content).
    pub xml_bytes: usize,
}

impl ForestStats {
    /// Compute statistics over a forest.
    pub fn of_forest(f: &[Tree]) -> Self {
        let mut s = ForestStats::default();
        for t in f {
            s.add_tree(t, 1);
        }
        s
    }

    fn add_tree(&mut self, t: &Tree, depth: usize) {
        self.nodes += 1;
        self.depth = self.depth.max(depth);
        match t.label.kind {
            NodeKind::Element => {
                self.elements += 1;
                // <name> ... </name>
                self.xml_bytes += 2 * t.label.name.len() + 5;
            }
            NodeKind::Text => {
                self.text_nodes += 1;
                self.text_bytes += t.label.name.len();
                self.xml_bytes += t.label.name.len();
            }
        }
        for c in &t.children {
            self.add_tree(c, depth + 1);
        }
    }
}

impl std::fmt::Display for ForestStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes ({} elem, {} text), depth {}, ~{} XML bytes",
            self.nodes, self.elements, self.text_nodes, self.depth, self.xml_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_forest;

    #[test]
    fn counts_are_consistent() {
        let f = parse_forest(r#"book(isbn("123") author("Knuth"))"#).unwrap();
        let s = ForestStats::of_forest(&f);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.elements, 3);
        assert_eq!(s.text_nodes, 2);
        assert_eq!(s.text_bytes, 8);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn empty_forest() {
        let s = ForestStats::of_forest(&[]);
        assert_eq!(s, ForestStats::default());
    }

    #[test]
    fn xml_bytes_matches_simple_serialization() {
        // <a></a> is 7 bytes
        let f = parse_forest("a").unwrap();
        assert_eq!(ForestStats::of_forest(&f).xml_bytes, 7);
    }
}
