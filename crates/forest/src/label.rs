//! Node labels: `(kind, name)` pairs.
//!
//! The paper abstracts node labels to words over a universal alphabet and
//! distinguishes node *types*; following Section 2 we keep exactly two kinds:
//! element nodes and text nodes (attributes are encoded as element children).

use std::fmt;
use std::sync::Arc;

/// The type of an XML node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum NodeKind {
    /// An element node (`<name>…</name>`); attribute nodes are encoded as
    /// element nodes whose single child is a text node.
    Element,
    /// A text node; the label's `name` is the text content.
    Text,
}

/// A node label: the pair of a [`NodeKind`] and a name.
///
/// Names are shared via `Arc<str>` so that copying subtrees (which the `qcopy`
/// state of a transducer does a lot) is cheap and the structures stay `Send`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label {
    pub kind: NodeKind,
    pub name: Arc<str>,
}

impl Label {
    /// An element label.
    pub fn elem(name: impl Into<Arc<str>>) -> Self {
        Label {
            kind: NodeKind::Element,
            name: name.into(),
        }
    }

    /// A text label; `name` is the text content.
    pub fn text(content: impl Into<Arc<str>>) -> Self {
        Label {
            kind: NodeKind::Text,
            name: content.into(),
        }
    }

    /// Whether this is a text-node label.
    pub fn is_text(&self) -> bool {
        self.kind == NodeKind::Text
    }

    /// Approximate heap footprint in bytes (used by the streaming engine's
    /// memory accounting).
    pub fn approx_bytes(&self) -> usize {
        self.name.len()
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            NodeKind::Element => write!(f, "{}", self.name),
            NodeKind::Text => write!(f, "{:?}", &*self.name),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_distinguish_labels() {
        let e = Label::elem("person0");
        let t = Label::text("person0");
        assert_ne!(e, t);
        assert_eq!(e.name, t.name);
        assert!(t.is_text());
        assert!(!e.is_text());
    }

    #[test]
    fn labels_are_cheap_to_clone_and_compare() {
        let a = Label::elem("site");
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.name, &b.name));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Label::elem("a")), "a");
        assert_eq!(format!("{:?}", Label::text("hi")), "\"hi\"");
    }
}
