//! Unranked trees and forests (Definition 1 of the paper).
//!
//! ```text
//! forest ::= ε | tree forest
//! tree   ::= label(forest)
//! ```
//!
//! A [`Forest`] is a `Vec<Tree>`; the empty vector is the empty forest ε.

use crate::label::{Label, NodeKind};

/// An unranked tree: a labelled root node with a forest of children.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tree {
    pub label: Label,
    pub children: Forest,
}

/// A forest: a (possibly empty) sequence of trees.
pub type Forest = Vec<Tree>;

/// Build an element node.
pub fn elem(name: &str, children: Forest) -> Tree {
    Tree {
        label: Label::elem(name),
        children,
    }
}

/// Build a text node (always a leaf).
pub fn text(content: &str) -> Tree {
    Tree {
        label: Label::text(content),
        children: Vec::new(),
    }
}

impl Tree {
    /// Number of nodes in this tree.
    pub fn size(&self) -> usize {
        1 + forest_size(&self.children)
    }

    /// Height of the tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Tree::depth).max().unwrap_or(0)
    }

    /// Whether this node is a text node.
    pub fn is_text(&self) -> bool {
        self.label.kind == NodeKind::Text
    }

    /// Pre-order iterator over all nodes of the tree (root first).
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder { stack: vec![self] }
    }

    /// The concatenation of all text-node contents in document order
    /// (the XPath *string value* of an element).
    pub fn string_value(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        if self.is_text() {
            out.push_str(&self.label.name);
        }
        for c in &self.children {
            c.collect_text(out);
        }
    }
}

impl std::fmt::Debug for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", crate::term::tree_to_term(self))
    }
}

/// Number of nodes in a forest.
pub fn forest_size(f: &[Tree]) -> usize {
    f.iter().map(Tree::size).sum()
}

/// Pre-order traversal over a single tree.
pub struct Preorder<'a> {
    stack: Vec<&'a Tree>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = &'a Tree;

    fn next(&mut self) -> Option<&'a Tree> {
        let t = self.stack.pop()?;
        // Push children in reverse so the leftmost child is visited first.
        for c in t.children.iter().rev() {
            self.stack.push(c);
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // book(isbn("123") author("Knuth"))
        elem(
            "book",
            vec![
                elem("isbn", vec![text("123")]),
                elem("author", vec![text("Knuth")]),
            ],
        )
    }

    #[test]
    fn size_and_depth() {
        let t = sample();
        assert_eq!(t.size(), 5);
        assert_eq!(t.depth(), 3);
        assert_eq!(forest_size(&[t.clone(), t]), 10);
    }

    #[test]
    fn preorder_visits_document_order() {
        let t = sample();
        let names: Vec<String> = t.preorder().map(|n| n.label.name.to_string()).collect();
        assert_eq!(names, ["book", "isbn", "123", "author", "Knuth"]);
    }

    #[test]
    fn string_value_concatenates_text() {
        assert_eq!(sample().string_value(), "123Knuth");
        assert_eq!(text("x").string_value(), "x");
        assert_eq!(elem("e", vec![]).string_value(), "");
    }

    #[test]
    fn empty_forest_is_epsilon() {
        let f: Forest = vec![];
        assert_eq!(forest_size(&f), 0);
    }
}
