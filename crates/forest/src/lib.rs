//! XML forest data model for `foxq`.
//!
//! This crate implements the data model of Section 2 of *"XQuery Streaming by
//! Forest Transducers"* (Hakuta, Maneth, Nakano, Iwasaki; ICDE 2014):
//!
//! * an XML document is an **unranked forest** — a sequence of unranked trees
//!   ([`Tree`], [`Forest`]);
//! * every node carries a [`Label`], a pair of a [`NodeKind`] (element or
//!   text) and a name (the element name, or the text content). Attribute
//!   nodes are encoded as element children, exactly as in the paper's adapted
//!   XMark data (Table 1: *"All attribute nodes are encoded as element
//!   nodes"*);
//! * the transducer alphabet Σ is a finite set of interned labels
//!   ([`Alphabet`], [`SymId`]);
//! * forests have a **term notation** (`doc(a(b() "txt"))`, [`term`]) and the
//!   classical **first-child/next-sibling** binary encoding ([`fcns`]);
//! * forest *values* — what MFT parameters and state results denote — have a
//!   shared-DAG representation with O(1) concatenation and reuse and
//!   budgeted materialization ([`value`]).

pub mod fcns;
pub mod fxhash;
pub mod label;
pub mod stats;
pub mod symbol;
pub mod term;
pub mod tree;
pub mod value;

pub use fcns::BinTree;
pub use fxhash::{FxHashMap, FxHashSet};
pub use label::{Label, NodeKind};
pub use stats::ForestStats;
pub use symbol::{Alphabet, SymId};
pub use tree::{elem, forest_size, text, Forest, Tree};
pub use value::{Value, ValueInterner};
