//! Term notation for forests.
//!
//! The paper writes forests as terms: `a(b() c())` is the tree `a` with
//! children `b` and `c`; juxtaposition is forest concatenation. We write text
//! nodes as double-quoted strings (`person("Jim")` is a `person` element with
//! one text child). The empty forest ε is the empty string.
//!
//! The grammar accepted by [`parse_forest`]:
//!
//! ```text
//! forest ::= (tree)*
//! tree   ::= NAME '(' forest ')' | NAME | STRING
//! NAME   ::= [A-Za-z_][A-Za-z0-9_.:-]*
//! STRING ::= '"' ([^"\\] | \\["\\nrt])* '"'
//! ```
//!
//! `NAME` without parentheses abbreviates `NAME()` (a leaf element).

use crate::label::NodeKind;
use crate::tree::{elem, text, Forest, Tree};
use std::fmt::Write as _;

/// Error produced by [`parse_forest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for TermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "term syntax error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for TermError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, TermError> {
        Err(TermError {
            pos: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn forest(&mut self) -> Result<Forest, TermError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some(b')') => return Ok(out),
                Some(b'"') => out.push(self.string_node()?),
                Some(c) if is_name_start(c) => out.push(self.elem_node()?),
                Some(c) => return self.err(format!("unexpected character {:?}", c as char)),
            }
        }
    }

    fn string_node(&mut self) -> Result<Tree, TermError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(text(&s));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; operate bytewise for speed.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.src.len() && (self.src[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| TermError {
                            pos: start,
                            msg: "invalid UTF-8".into(),
                        })?,
                    );
                }
            }
        }
    }

    fn elem_node(&mut self) -> Result<Tree, TermError> {
        let start = self.pos;
        while self.pos < self.src.len() && is_name_cont(self.src[self.pos]) {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| TermError {
            pos: start,
            msg: "invalid UTF-8".into(),
        })?;
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let children = self.forest()?;
            self.skip_ws();
            if self.peek() != Some(b')') {
                return self.err("expected ')'");
            }
            self.pos += 1;
            Ok(elem(name, children))
        } else {
            Ok(elem(name, Vec::new()))
        }
    }
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_name_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b':' | b'-')
}

/// Parse a forest from term notation.
pub fn parse_forest(src: &str) -> Result<Forest, TermError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let f = p.forest()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return p.err("trailing input");
    }
    Ok(f)
}

/// Parse a single tree from term notation.
pub fn parse_tree(src: &str) -> Result<Tree, TermError> {
    let f = parse_forest(src)?;
    if f.len() != 1 {
        return Err(TermError {
            pos: 0,
            msg: format!("expected 1 tree, found {}", f.len()),
        });
    }
    Ok(f.into_iter().next().unwrap())
}

/// Render a forest in term notation.
pub fn forest_to_term(f: &[Tree]) -> String {
    let mut out = String::new();
    for (i, t) in f.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        write_tree(t, &mut out);
    }
    out
}

/// Render a single tree in term notation.
pub fn tree_to_term(t: &Tree) -> String {
    let mut out = String::new();
    write_tree(t, &mut out);
    out
}

fn write_tree(t: &Tree, out: &mut String) {
    match t.label.kind {
        NodeKind::Text => {
            out.push('"');
            for c in t.label.name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        NodeKind::Element => {
            let _ = write!(out, "{}", t.label.name);
            out.push('(');
            for (i, c) in t.children.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                write_tree(c, out);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // The paper's example: a(b()) is parsed as a(b(ε)ε)ε.
        let f = parse_forest("a(b())").unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(&*f[0].label.name, "a");
        assert_eq!(f[0].children.len(), 1);
        assert!(f[0].children[0].children.is_empty());
    }

    #[test]
    fn leaf_abbreviation() {
        assert_eq!(parse_forest("a").unwrap(), parse_forest("a()").unwrap());
    }

    #[test]
    fn roundtrip_book() {
        let src = r#"book(isbn("123") price("$99") author("Knuth") title("Art of Programming"))"#;
        let f = parse_forest(src).unwrap();
        assert_eq!(forest_to_term(&f), src);
    }

    #[test]
    fn multi_tree_forest() {
        let f = parse_forest("a(b) c \"x\"").unwrap();
        assert_eq!(f.len(), 3);
        assert!(f[2].is_text());
    }

    #[test]
    fn empty_is_epsilon() {
        assert!(parse_forest("").unwrap().is_empty());
        assert!(parse_forest("   ").unwrap().is_empty());
    }

    #[test]
    fn errors_are_located() {
        let e = parse_forest("a(b").unwrap_err();
        assert!(e.msg.contains("')'"), "{e}");
        assert!(parse_forest("a)").is_err());
        assert!(parse_forest("\"unterminated").is_err());
        assert!(parse_tree("a b").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let f = parse_forest(r#""line\nbreak \"q\" \\ tab\t""#).unwrap();
        assert_eq!(&*f[0].label.name, "line\nbreak \"q\" \\ tab\t");
        let rendered = forest_to_term(&f);
        assert_eq!(parse_forest(&rendered).unwrap(), f);
    }
}
