//! Fixed-bucket latency histogram with atomic, lock-free recording.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// A fixed-bucket histogram of durations, recorded in microseconds.
///
/// Buckets are defined by a static ladder of upper bounds (in micros);
/// each observation increments exactly one bucket plus the running
/// count and sum, all with relaxed atomics — recording never takes a
/// lock and is safe from any thread. Rendering produces Prometheus
/// text-format `_bucket` lines with *cumulative* counts and
/// seconds-valued `le` labels, followed by `_sum` (seconds) and
/// `_count`, per the exposition-format spec.
pub struct Histogram {
    /// Strictly increasing upper bounds, in microseconds.
    bounds: &'static [u64],
    /// Per-bucket (non-cumulative) counts; `buckets[bounds.len()]` is
    /// the overflow (`+Inf`) bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// Default ladder for request/stage latencies: 100µs .. 10s.
    pub const LATENCY_BOUNDS_MICROS: &'static [u64] = &[
        100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
        1_000_000, 2_500_000, 5_000_000, 10_000_000,
    ];

    /// Finer ladder for reactor-internal timings (loop lag, epoll
    /// wait): 10µs .. 1s.
    pub const REACTOR_BOUNDS_MICROS: &'static [u64] = &[
        10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
        1_000_000,
    ];

    /// Ladder for node-count observations (live nodes, pending calls):
    /// powers of four, 1 .. 4M.
    pub const NODE_BOUNDS: &'static [u64] = &[
        1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
    ];

    /// Ladder for byte-count observations (live bytes, allocator bytes
    /// per request): powers of four, 256 B .. 1 GiB.
    pub const BYTE_BOUNDS: &'static [u64] = &[
        256,
        1_024,
        4_096,
        16_384,
        65_536,
        262_144,
        1_048_576,
        4_194_304,
        16_777_216,
        67_108_864,
        268_435_456,
        1_073_741_824,
    ];

    /// Build a histogram over the given (strictly increasing) bounds.
    pub fn new(bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// A histogram on the default latency ladder.
    pub fn latency() -> Histogram {
        Histogram::new(Self::LATENCY_BOUNDS_MICROS)
    }

    /// A histogram on the fine-grained reactor ladder.
    pub fn reactor() -> Histogram {
        Histogram::new(Self::REACTOR_BOUNDS_MICROS)
    }

    /// A histogram on the node-count ladder.
    pub fn nodes() -> Histogram {
        Histogram::new(Self::NODE_BOUNDS)
    }

    /// A histogram on the byte-count ladder.
    pub fn bytes() -> Histogram {
        Histogram::new(Self::BYTE_BOUNDS)
    }

    /// Record one observation of a dimensionless value (node/byte
    /// ladders). Same storage as `observe_micros`; only rendering
    /// differs (`render_values_into` vs. `render_into`).
    pub fn observe_value(&self, value: u64) {
        self.observe_micros(value);
    }

    /// Record one observation of `micros` microseconds.
    pub fn observe_micros(&self, micros: u64) {
        let idx = self.bounds.partition_point(|&b| b < micros);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_micros.fetch_add(micros, Relaxed);
    }

    /// Record one observation of a [`Duration`].
    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Relaxed)
    }

    /// Append `name_bucket`/`name_sum`/`name_count` sample lines to
    /// `out`. `labels` is either empty or a comma-separated list of
    /// `key="value"` pairs (no surrounding braces); the `le` label is
    /// appended after it. `# HELP`/`# TYPE` headers are the caller's
    /// job so labeled families render them exactly once.
    pub fn render_into(&self, out: &mut String, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, &bound) in self.bounds.iter().enumerate() {
            cumulative += self.buckets[i].load(Relaxed);
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
                micros_as_seconds(bound)
            );
        }
        cumulative += self.buckets[self.bounds.len()].load(Relaxed);
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
        );
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(
            out,
            "{name}_sum{braces} {}",
            micros_as_seconds(self.sum_micros())
        );
        let _ = writeln!(out, "{name}_count{braces} {}", self.count());
    }

    /// Like [`Histogram::render_into`] but for dimensionless value
    /// ladders: `le` labels and `_sum` are raw integers, not seconds.
    pub fn render_values_into(&self, out: &mut String, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, &bound) in self.bounds.iter().enumerate() {
            cumulative += self.buckets[i].load(Relaxed);
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.buckets[self.bounds.len()].load(Relaxed);
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
        );
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "{name}_sum{braces} {}", self.sum_micros());
        let _ = writeln!(out, "{name}_count{braces} {}", self.count());
    }
}

/// Format a microsecond value as a decimal seconds string without
/// float round-off: `100` -> `"0.0001"`, `2_500_000` -> `"2.5"`.
pub(crate) fn micros_as_seconds(micros: u64) -> String {
    let secs = micros / 1_000_000;
    let frac = micros % 1_000_000;
    if frac == 0 {
        format!("{secs}")
    } else {
        let mut s = format!("{secs}.{frac:06}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(micros_as_seconds(0), "0");
        assert_eq!(micros_as_seconds(100), "0.0001");
        assert_eq!(micros_as_seconds(1_000), "0.001");
        assert_eq!(micros_as_seconds(2_500_000), "2.5");
        assert_eq!(micros_as_seconds(10_000_000), "10");
    }

    #[test]
    fn buckets_are_cumulative_and_le_ordered() {
        let h = Histogram::latency();
        h.observe_micros(50); // first bucket (<= 100)
        h.observe_micros(100); // boundary lands in its own bucket
        h.observe_micros(3_000); // <= 5_000
        h.observe_micros(99_000_000); // overflow -> +Inf only
        assert_eq!(h.count(), 4);

        let mut out = String::new();
        h.render_into(&mut out, "t_seconds", "");
        let bucket_counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("t_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(
            bucket_counts.len(),
            Histogram::LATENCY_BOUNDS_MICROS.len() + 1
        );
        // Cumulative: non-decreasing, +Inf equals total count.
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*bucket_counts.last().unwrap(), 4);
        // The two sub-100µs observations are both in the first bucket.
        assert_eq!(bucket_counts[0], 2);
        // The overflow-only observation appears in no finite bucket.
        assert_eq!(bucket_counts[bucket_counts.len() - 2], 3);
        assert!(out.contains("t_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(out.contains("t_seconds_count 4"));
    }

    #[test]
    fn value_ladders_render_integer_bounds() {
        let h = Histogram::bytes();
        h.observe_value(300); // <= 1024
        h.observe_value(5_000_000_000); // overflow -> +Inf only
        let mut out = String::new();
        h.render_values_into(&mut out, "b_bytes", "");
        assert!(out.contains("b_bytes_bucket{le=\"256\"} 0"));
        assert!(out.contains("b_bytes_bucket{le=\"1024\"} 1"));
        assert!(out.contains("b_bytes_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("b_bytes_sum 5000000300"));
        assert!(out.contains("b_bytes_count 2"));
    }

    #[test]
    fn labels_compose_with_le() {
        let h = Histogram::reactor();
        h.observe(Duration::from_micros(42));
        let mut out = String::new();
        h.render_into(&mut out, "x_seconds", "endpoint=\"query\"");
        assert!(out.contains("x_seconds_bucket{endpoint=\"query\",le=\"0.00005\"} 1"));
        assert!(out.contains("x_seconds_sum{endpoint=\"query\"} 0.000042"));
        assert!(out.contains("x_seconds_count{endpoint=\"query\"} 1"));
    }
}
