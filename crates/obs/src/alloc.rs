//! Counting global allocator and process memory accounting.
//!
//! [`CountingAlloc`] wraps the system allocator with relaxed atomic
//! counters (allocations, frees, bytes in/out, live-byte peak) plus
//! per-thread totals, so a worker thread can bill one run's allocator
//! traffic via an [`AllocScope`] without being charged for neighbours.
//! Every binary that links `foxq_obs` gets the wrapper installed as
//! `#[global_allocator]`; the accounting fast path is a handful of
//! relaxed atomic adds, cheap enough to leave on unconditionally.
//!
//! [`read_rss_bytes`] reads the resident-set size from
//! `/proc/self/statm` (Linux; `None` elsewhere), for the
//! `foxq_process_rss_bytes` gauge.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// The process-wide counting allocator, installed below.
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialized so reading them never allocates (the allocator
    // itself runs this code). `try_with` below tolerates TLS teardown.
    static TL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOCATED_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_FREED_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn note_alloc(size: usize) {
    let size = size as u64;
    ALLOCATIONS.fetch_add(1, Relaxed);
    let allocated = ALLOCATED_BYTES.fetch_add(size, Relaxed) + size;
    // Peak is a best-effort CAS-max over the (racy) live estimate; it
    // can only ever under-count a peak by a concurrent free, never
    // decrease.
    let live = allocated.saturating_sub(FREED_BYTES.load(Relaxed));
    let mut peak = PEAK_LIVE_BYTES.load(Relaxed);
    while live > peak {
        match PEAK_LIVE_BYTES.compare_exchange_weak(peak, live, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(seen) => peak = seen,
        }
    }
    let _ = TL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
    let _ = TL_ALLOCATED_BYTES.try_with(|c| c.set(c.get() + size));
}

#[inline]
fn note_free(size: usize) {
    DEALLOCATIONS.fetch_add(1, Relaxed);
    FREED_BYTES.fetch_add(size as u64, Relaxed);
    let _ = TL_FREED_BYTES.try_with(|c| c.set(c.get() + size as u64));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            note_alloc(new_size);
            note_free(layout.size());
        }
        new_ptr
    }
}

/// Point-in-time totals from the counting allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations since process start (allocs + zeroed + reallocs).
    pub allocations: u64,
    /// Deallocations since process start.
    pub deallocations: u64,
    /// Total bytes handed out since process start.
    pub allocated_bytes: u64,
    /// Total bytes returned since process start.
    pub freed_bytes: u64,
    /// Bytes currently live (allocated − freed).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_live_bytes: u64,
}

/// Read the process-wide allocator counters.
pub fn alloc_snapshot() -> AllocSnapshot {
    let allocated_bytes = ALLOCATED_BYTES.load(Relaxed);
    let freed_bytes = FREED_BYTES.load(Relaxed);
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Relaxed),
        deallocations: DEALLOCATIONS.load(Relaxed),
        allocated_bytes,
        freed_bytes,
        live_bytes: allocated_bytes.saturating_sub(freed_bytes),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Relaxed),
    }
}

/// Allocator traffic attributed to one thread between two points —
/// what an [`AllocScope`] hands back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocations performed by this thread inside the scope.
    pub allocations: u64,
    /// Bytes allocated by this thread inside the scope.
    pub allocated_bytes: u64,
    /// Bytes freed by this thread inside the scope.
    pub freed_bytes: u64,
}

/// Thread-scoped allocator meter: captures the current thread's
/// counters at [`AllocScope::begin`], and [`AllocScope::delta`] reports
/// what this thread allocated/freed since. Because the counters are
/// thread-local, concurrent scopes on other threads never cross-bill.
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    allocations: u64,
    allocated_bytes: u64,
    freed_bytes: u64,
}

impl AllocScope {
    /// Start metering the current thread's allocator traffic.
    pub fn begin() -> AllocScope {
        AllocScope {
            allocations: TL_ALLOCATIONS.with(Cell::get),
            allocated_bytes: TL_ALLOCATED_BYTES.with(Cell::get),
            freed_bytes: TL_FREED_BYTES.with(Cell::get),
        }
    }

    /// This thread's allocator traffic since [`AllocScope::begin`].
    pub fn delta(&self) -> AllocDelta {
        AllocDelta {
            allocations: TL_ALLOCATIONS
                .with(Cell::get)
                .wrapping_sub(self.allocations),
            allocated_bytes: TL_ALLOCATED_BYTES
                .with(Cell::get)
                .wrapping_sub(self.allocated_bytes),
            freed_bytes: TL_FREED_BYTES
                .with(Cell::get)
                .wrapping_sub(self.freed_bytes),
        }
    }
}

/// Resident-set size of this process in bytes, from
/// `/proc/self/statm` field 2 (resident pages) times the page size.
/// `None` where procfs is unavailable (non-Linux).
pub fn read_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages.saturating_mul(page_size_bytes()))
}

/// The system page size via `sysconf(_SC_PAGESIZE)` (4096 fallback).
fn page_size_bytes() -> u64 {
    #[cfg(unix)]
    {
        extern "C" {
            fn sysconf(name: i32) -> isize;
        }
        // _SC_PAGESIZE is 30 on Linux and the BSDs we care about.
        const SC_PAGESIZE: i32 = 30;
        let n = unsafe { sysconf(SC_PAGESIZE) };
        if n > 0 {
            return n as u64;
        }
    }
    4096
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_delta_matches_a_known_allocation() {
        let scope = AllocScope::begin();
        let buf = vec![0u8; 1 << 16];
        let after_alloc = scope.delta();
        assert!(after_alloc.allocations >= 1);
        assert!(
            after_alloc.allocated_bytes >= 1 << 16,
            "64 KiB allocation not billed: {after_alloc:?}"
        );
        drop(buf);
        let after_free = scope.delta();
        assert!(
            after_free.freed_bytes >= after_alloc.freed_bytes + (1 << 16),
            "64 KiB free not billed: {after_free:?}"
        );
    }

    #[test]
    fn global_snapshot_moves_and_peak_is_monotone() {
        let before = alloc_snapshot();
        let buf = vec![0u8; 1 << 16];
        let during = alloc_snapshot();
        assert!(during.allocations > before.allocations);
        assert!(during.allocated_bytes >= before.allocated_bytes + (1 << 16));
        assert!(during.peak_live_bytes >= before.peak_live_bytes);
        assert!(during.peak_live_bytes >= during.live_bytes.saturating_sub(1 << 20));
        drop(buf);
        let after = alloc_snapshot();
        // Peak never decreases, even after everything is freed.
        assert!(after.peak_live_bytes >= during.peak_live_bytes);
        assert!(after.freed_bytes >= during.freed_bytes + (1 << 16));
    }

    #[test]
    fn concurrent_scopes_do_not_cross_bill() {
        // A thread allocating 1 MiB must not show up in this thread's
        // scope; the barrier orders "their allocation" strictly inside
        // our scope's window.
        let scope = AllocScope::begin();
        let handle = std::thread::spawn(|| {
            let big = vec![7u8; 1 << 20];
            std::hint::black_box(&big);
            big.len()
        });
        assert_eq!(handle.join().unwrap(), 1 << 20);
        let delta = scope.delta();
        assert!(
            delta.allocated_bytes < 1 << 20,
            "another thread's 1 MiB billed to this scope: {delta:?}"
        );
    }

    #[test]
    fn rss_is_reported_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = read_rss_bytes().expect("statm readable on linux");
            assert!(rss > 0);
        }
    }
}
