//! Per-request trace context and RAII span guards.

use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Instant;

use crate::histogram::micros_as_seconds;
use crate::Stage;

/// A snapshot of per-stage wall time, in microseconds.
///
/// `Copy` so it can ride inside cached query metadata; renders as a
/// `Server-Timing` header value or a CLI stage table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    micros: [u64; Stage::COUNT],
}

impl StageTimes {
    /// Add `micros` to `stage`.
    pub fn add(&mut self, stage: Stage, micros: u64) {
        self.micros[stage.idx()] += micros;
    }

    /// Accumulated micros for one stage.
    pub fn get(&self, stage: Stage) -> u64 {
        self.micros[stage.idx()]
    }

    /// Stages with nonzero time, in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, u64)> + '_ {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.get(s)))
            .filter(|&(_, m)| m > 0)
    }

    /// Sum across all stages, in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.micros.iter().sum()
    }

    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &StageTimes) {
        for (slot, add) in self.micros.iter_mut().zip(other.micros.iter()) {
            *slot += add;
        }
    }

    /// Render as a `Server-Timing` header value: one `name;dur=millis`
    /// entry per nonzero stage, in pipeline order. Empty string when
    /// nothing was recorded.
    pub fn server_timing_value(&self) -> String {
        let mut out = String::new();
        for (stage, micros) in self.iter() {
            if !out.is_empty() {
                out.push_str(", ");
            }
            let _ = write!(out, "{};dur={}", stage.name(), micros_as_millis(micros));
        }
        out
    }
}

/// Format micros as decimal milliseconds: `1_234` -> `"1.234"`.
fn micros_as_millis(micros: u64) -> String {
    // Milliseconds are micros scaled by 10^3; reuse the seconds
    // formatter on the value scaled up by the same factor.
    micros_as_seconds(micros.saturating_mul(1_000))
}

/// Per-request trace state: a request id plus a per-stage time
/// accumulator fed by [`Span`] guards.
///
/// Uses `Cell` internally, so a context lives on one thread (each
/// request is served start-to-finish by a single worker); it is
/// deliberately not `Sync`.
pub struct TraceContext {
    id: u64,
    start: Instant,
    stages: [Cell<u64>; Stage::COUNT],
}

impl TraceContext {
    /// New context with the given request id, clock started now.
    pub fn new(id: u64) -> TraceContext {
        TraceContext {
            id,
            start: Instant::now(),
            stages: Default::default(),
        }
    }

    /// The request id this context was created with.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Start a timed span for `stage`; time accrues when the returned
    /// guard drops.
    pub fn enter(&self, stage: Stage) -> Span<'_> {
        Span {
            ctx: self,
            stage,
            start: Instant::now(),
        }
    }

    /// Credit `micros` to `stage` directly (for durations measured
    /// elsewhere, e.g. compile times cached with the query).
    pub fn add_micros(&self, stage: Stage, micros: u64) {
        let cell = &self.stages[stage.idx()];
        cell.set(cell.get() + micros);
    }

    /// Wall time since the context was created, in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Snapshot the per-stage accumulator.
    pub fn times(&self) -> StageTimes {
        let mut out = StageTimes::default();
        for &stage in &Stage::ALL {
            out.add(stage, self.stages[stage.idx()].get());
        }
        out
    }
}

/// RAII guard: credits elapsed wall time to its stage on drop.
pub struct Span<'a> {
    ctx: &'a TraceContext,
    stage: Stage,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let micros = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.ctx.add_micros(self.stage, micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_accumulate_into_stages() {
        let ctx = TraceContext::new(7);
        assert_eq!(ctx.id(), 7);
        {
            let _s = ctx.enter(Stage::Parse);
            std::thread::sleep(Duration::from_millis(2));
        }
        ctx.add_micros(Stage::Execute, 1_500);
        ctx.add_micros(Stage::Execute, 500);
        let times = ctx.times();
        assert!(
            times.get(Stage::Parse) >= 2_000,
            "parse={}",
            times.get(Stage::Parse)
        );
        assert_eq!(times.get(Stage::Execute), 2_000);
        assert_eq!(times.get(Stage::Optimize), 0);
        assert_eq!(times.total_micros(), times.get(Stage::Parse) + 2_000);
        assert!(ctx.total_micros() >= times.get(Stage::Parse));
    }

    #[test]
    fn server_timing_format() {
        let mut times = StageTimes::default();
        times.add(Stage::Parse, 1_234);
        times.add(Stage::Execute, 50);
        times.add(Stage::Serialize, 2_000_000);
        assert_eq!(
            times.server_timing_value(),
            "parse;dur=1.234, execute;dur=0.05, serialize;dur=2000"
        );
        assert_eq!(StageTimes::default().server_timing_value(), "");
    }

    #[test]
    fn merge_adds_per_stage() {
        let mut a = StageTimes::default();
        a.add(Stage::Parse, 10);
        let mut b = StageTimes::default();
        b.add(Stage::Parse, 5);
        b.add(Stage::Translate, 7);
        a.merge(&b);
        assert_eq!(a.get(Stage::Parse), 15);
        assert_eq!(a.get(Stage::Translate), 7);
        assert_eq!(a.total_micros(), 22);
    }
}
