//! Trace sinks: where finished request traces go.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::span::StageTimes;

/// One finished request (or CLI run), with its stage breakdown.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Request id (matches the `X-Foxq-Request-Id` response header).
    pub id: u64,
    /// What was served: endpoint name or CLI command.
    pub target: String,
    /// Free-form detail — request path, query hash; may be empty.
    pub detail: String,
    /// HTTP status (0 for CLI runs).
    pub status: u16,
    /// End-to-end wall time in microseconds.
    pub total_micros: u64,
    /// Per-stage breakdown.
    pub stages: StageTimes,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub unix_millis: u64,
}

impl TraceRecord {
    /// Milliseconds since the Unix epoch, for stamping records.
    pub fn now_unix_millis() -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    /// Serialize this record as a single JSON line (no trailing
    /// newline) — the shape both the [`JsonlSink`] and the ring's JSON
    /// dump emit.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"id\":\"{:016x}\",\"target\":{},\"status\":{},\"unix_ms\":{},\"total_us\":{}",
            self.id,
            json_string(&self.target),
            self.status,
            self.unix_millis,
            self.total_micros
        );
        if !self.detail.is_empty() {
            let _ = write!(out, ",\"detail\":{}", json_string(&self.detail));
        }
        let _ = write!(out, ",\"stages_us\":{{");
        let mut first = true;
        for (stage, micros) in self.stages.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{micros}", stage.name());
        }
        out.push_str("}}");
        out
    }
}

/// Destination for finished traces. Implementations must tolerate
/// concurrent calls; recording must never fail the request being
/// traced.
pub trait TraceSink: Send + Sync {
    fn record(&self, rec: &TraceRecord);
}

/// Bounded in-memory ring of the most recent records — the slow-query
/// log behind `GET /debug/requests`. Oldest records are evicted first.
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<TraceRecord>>,
}

impl RingSink {
    /// Ring holding at most `cap` records (`cap` 0 keeps none).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap,
            buf: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceRecord>> {
        // A panic while holding the lock poisons it; the data is a
        // plain ring of records, still safe to use.
        self.buf.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the ring, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.lock().iter().cloned().collect()
    }

    /// Render the ring as JSONL (oldest first): one object per record,
    /// the same shape the [`JsonlSink`] writes.
    pub fn dump_json(&self) -> String {
        let records = self.snapshot();
        let mut out = String::new();
        for r in &records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Render the ring as a human-readable text table (oldest first),
    /// one line per record plus a header.
    pub fn dump(&self) -> String {
        let records = self.snapshot();
        let mut out = String::new();
        let _ = writeln!(out, "# slow requests: {} (most recent last)", records.len());
        for r in &records {
            let _ = write!(
                out,
                "id={:016x} target={} status={} total_ms={}",
                r.id,
                r.target,
                r.status,
                millis_display(r.total_micros)
            );
            for (stage, micros) in r.stages.iter() {
                let _ = write!(out, " {}_ms={}", stage.name(), millis_display(micros));
            }
            if !r.detail.is_empty() {
                let _ = write!(out, " detail={:?}", r.detail);
            }
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&self, rec: &TraceRecord) {
        if self.cap == 0 {
            return;
        }
        let mut buf = self.lock();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(rec.clone());
    }
}

/// Append-only JSONL trace log (`foxq serve --trace-log <path>`): one
/// JSON object per record, with size-capped rotation so an always-on
/// log can't fill the disk. When the file would exceed `max_bytes` it
/// is renamed to `<path>.1` (replacing any previous rotation) and a
/// fresh file is started — at most `2 × max_bytes` ever on disk.
/// Write errors are swallowed: tracing must never take down serving.
pub struct JsonlSink {
    path: PathBuf,
    max_bytes: u64,
    out: Mutex<(File, u64)>,
}

/// Default rotation threshold for [`JsonlSink`]: 64 MiB.
pub const DEFAULT_TRACE_LOG_MAX_BYTES: u64 = 64 * 1024 * 1024;

impl JsonlSink {
    /// Open (create or append to) the log at `path` with the default
    /// 64 MiB rotation threshold.
    pub fn open(path: &Path) -> std::io::Result<JsonlSink> {
        Self::open_with_max(path, DEFAULT_TRACE_LOG_MAX_BYTES)
    }

    /// Open the log at `path`, rotating once it would exceed
    /// `max_bytes` (0 means never rotate).
    pub fn open_with_max(path: &Path, max_bytes: u64) -> std::io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(JsonlSink {
            path: path.to_path_buf(),
            max_bytes,
            out: Mutex::new((file, written)),
        })
    }

    /// Append one pre-serialized JSON object as a line. Used for
    /// auxiliary records (per-run profiles) that share the trace log.
    pub fn append_json(&self, line: &str) {
        let mut guard = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let needed = line.len() as u64 + 1;
        if self.max_bytes > 0 && guard.1 + needed > self.max_bytes && guard.1 > 0 {
            // Rotate: current file becomes `<path>.1`, start fresh.
            // On failure keep writing to the old handle — never drop
            // records over a rotation error.
            let mut rotated = self.path.clone().into_os_string();
            rotated.push(".1");
            if std::fs::rename(&self.path, PathBuf::from(rotated)).is_ok() {
                if let Ok(fresh) = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                {
                    *guard = (fresh, 0);
                }
            }
        }
        if writeln!(&mut guard.0, "{line}").is_ok() {
            guard.1 += needed;
        }
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, rec: &TraceRecord) {
        self.append_json(&rec.to_json());
    }
}

/// Minimal JSON string encoder (control chars, quotes, backslashes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Micros rendered as decimal millis for the text dump.
fn millis_display(micros: u64) -> String {
    crate::histogram::micros_as_seconds(micros.saturating_mul(1_000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;

    fn rec(id: u64, total: u64) -> TraceRecord {
        let mut stages = StageTimes::default();
        stages.add(Stage::Parse, 100);
        stages.add(Stage::Execute, total.saturating_sub(100));
        TraceRecord {
            id,
            target: "query".to_string(),
            detail: String::new(),
            status: 200,
            total_micros: total,
            stages,
            unix_millis: 1_700_000_000_000,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingSink::new(2);
        assert!(ring.is_empty());
        ring.record(&rec(1, 1_000));
        ring.record(&rec(2, 2_000));
        ring.record(&rec(3, 3_000));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id, 2);
        assert_eq!(snap[1].id, 3);
        let dump = ring.dump();
        assert!(dump.contains("# slow requests: 2"));
        assert!(dump.contains("id=0000000000000003 target=query status=200 total_ms=3"));
        assert!(dump.contains("parse_ms=0.1"));
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let ring = RingSink::new(0);
        ring.record(&rec(1, 1_000));
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_lines_are_wellformed() {
        let line = TraceRecord {
            detail: "a\"b\\c\nd".to_string(),
            ..rec(0xabc, 5_000)
        }
        .to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"id\":\"0000000000000abc\""));
        assert!(line.contains("\"target\":\"query\""));
        assert!(line.contains("\"detail\":\"a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"parse\":100"));
        assert!(line.contains("\"execute\":4900"));
        // Balanced braces (no raw newline inside).
        assert_eq!(line.matches('\n').count(), 0);
    }

    #[test]
    fn jsonl_sink_appends_to_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("foxq_obs_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let sink = JsonlSink::open(&path).unwrap();
            sink.record(&rec(1, 1_000));
            sink.record(&rec(2, 2_000));
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ring_dumps_json_in_sink_shape() {
        let ring = RingSink::new(4);
        ring.record(&rec(1, 1_000));
        ring.record(&rec(2, 2_000));
        let json = ring.dump_json();
        assert_eq!(json.lines().count(), 2);
        assert_eq!(json.lines().next().unwrap(), rec(1, 1_000).to_json());
        assert!(json.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn jsonl_sink_rotates_at_the_size_cap() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("foxq_obs_rotate_{}.jsonl", std::process::id()));
        let rotated = dir.join(format!("foxq_obs_rotate_{}.jsonl.1", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
        // Totals chosen so every serialized record has the same length.
        let line_len = rec(1, 1_100).to_json().len() as u64 + 1;
        // Cap fits exactly two records; the third must rotate first.
        let sink = JsonlSink::open_with_max(&path, 2 * line_len).unwrap();
        sink.record(&rec(1, 1_100));
        sink.record(&rec(2, 2_100));
        sink.record(&rec(3, 3_100));
        let fresh = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(&rotated).unwrap();
        assert_eq!(fresh.lines().count(), 1, "fresh file holds the overflow");
        assert_eq!(old.lines().count(), 2, "rotated file holds the cap-full");
        assert!(fresh.contains("\"id\":\"0000000000000003\""));
        // A second overflow replaces the previous rotation.
        sink.record(&rec(4, 4_100));
        sink.record(&rec(5, 5_100));
        let old = std::fs::read_to_string(&rotated).unwrap();
        assert!(old.contains("\"id\":\"0000000000000003\""));
        assert!(!old.contains("\"id\":\"0000000000000001\""));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }
}
