//! Trace sinks: where finished request traces go.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::span::StageTimes;

/// One finished request (or CLI run), with its stage breakdown.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Request id (matches the `X-Foxq-Request-Id` response header).
    pub id: u64,
    /// What was served: endpoint name or CLI command.
    pub target: String,
    /// Free-form detail — request path, query hash; may be empty.
    pub detail: String,
    /// HTTP status (0 for CLI runs).
    pub status: u16,
    /// End-to-end wall time in microseconds.
    pub total_micros: u64,
    /// Per-stage breakdown.
    pub stages: StageTimes,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub unix_millis: u64,
}

impl TraceRecord {
    /// Milliseconds since the Unix epoch, for stamping records.
    pub fn now_unix_millis() -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }
}

/// Destination for finished traces. Implementations must tolerate
/// concurrent calls; recording must never fail the request being
/// traced.
pub trait TraceSink: Send + Sync {
    fn record(&self, rec: &TraceRecord);
}

/// Bounded in-memory ring of the most recent records — the slow-query
/// log behind `GET /debug/requests`. Oldest records are evicted first.
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<TraceRecord>>,
}

impl RingSink {
    /// Ring holding at most `cap` records (`cap` 0 keeps none).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap,
            buf: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceRecord>> {
        // A panic while holding the lock poisons it; the data is a
        // plain ring of records, still safe to use.
        self.buf.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the ring, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.lock().iter().cloned().collect()
    }

    /// Render the ring as a human-readable text table (oldest first),
    /// one line per record plus a header.
    pub fn dump(&self) -> String {
        let records = self.snapshot();
        let mut out = String::new();
        let _ = writeln!(out, "# slow requests: {} (most recent last)", records.len());
        for r in &records {
            let _ = write!(
                out,
                "id={:016x} target={} status={} total_ms={}",
                r.id,
                r.target,
                r.status,
                millis_display(r.total_micros)
            );
            for (stage, micros) in r.stages.iter() {
                let _ = write!(out, " {}_ms={}", stage.name(), millis_display(micros));
            }
            if !r.detail.is_empty() {
                let _ = write!(out, " detail={:?}", r.detail);
            }
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&self, rec: &TraceRecord) {
        if self.cap == 0 {
            return;
        }
        let mut buf = self.lock();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(rec.clone());
    }
}

/// Append-only JSONL trace log (`foxq serve --trace-log <path>`): one
/// JSON object per record. Write errors are swallowed — tracing must
/// never take down serving.
pub struct JsonlSink {
    out: Mutex<File>,
}

impl JsonlSink {
    /// Open (create or append to) the log at `path`.
    pub fn open(path: &Path) -> std::io::Result<JsonlSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            out: Mutex::new(file),
        })
    }

    /// Serialize one record as a single JSON line.
    fn to_json(rec: &TraceRecord) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"id\":\"{:016x}\",\"target\":{},\"status\":{},\"unix_ms\":{},\"total_us\":{}",
            rec.id,
            json_string(&rec.target),
            rec.status,
            rec.unix_millis,
            rec.total_micros
        );
        if !rec.detail.is_empty() {
            let _ = write!(out, ",\"detail\":{}", json_string(&rec.detail));
        }
        let _ = write!(out, ",\"stages_us\":{{");
        let mut first = true;
        for (stage, micros) in rec.stages.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{micros}", stage.name());
        }
        out.push_str("}}");
        out
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, rec: &TraceRecord) {
        let line = Self::to_json(rec);
        let mut file = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(&mut *file, "{line}");
    }
}

/// Minimal JSON string encoder (control chars, quotes, backslashes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Micros rendered as decimal millis for the text dump.
fn millis_display(micros: u64) -> String {
    crate::histogram::micros_as_seconds(micros.saturating_mul(1_000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;

    fn rec(id: u64, total: u64) -> TraceRecord {
        let mut stages = StageTimes::default();
        stages.add(Stage::Parse, 100);
        stages.add(Stage::Execute, total.saturating_sub(100));
        TraceRecord {
            id,
            target: "query".to_string(),
            detail: String::new(),
            status: 200,
            total_micros: total,
            stages,
            unix_millis: 1_700_000_000_000,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingSink::new(2);
        assert!(ring.is_empty());
        ring.record(&rec(1, 1_000));
        ring.record(&rec(2, 2_000));
        ring.record(&rec(3, 3_000));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id, 2);
        assert_eq!(snap[1].id, 3);
        let dump = ring.dump();
        assert!(dump.contains("# slow requests: 2"));
        assert!(dump.contains("id=0000000000000003 target=query status=200 total_ms=3"));
        assert!(dump.contains("parse_ms=0.1"));
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let ring = RingSink::new(0);
        ring.record(&rec(1, 1_000));
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_lines_are_wellformed() {
        let line = JsonlSink::to_json(&TraceRecord {
            detail: "a\"b\\c\nd".to_string(),
            ..rec(0xabc, 5_000)
        });
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"id\":\"0000000000000abc\""));
        assert!(line.contains("\"target\":\"query\""));
        assert!(line.contains("\"detail\":\"a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"parse\":100"));
        assert!(line.contains("\"execute\":4900"));
        // Balanced braces (no raw newline inside).
        assert_eq!(line.matches('\n').count(), 0);
    }

    #[test]
    fn jsonl_sink_appends_to_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("foxq_obs_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let sink = JsonlSink::open(&path).unwrap();
            sink.record(&rec(1, 1_000));
            sink.record(&rec(2, 2_000));
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }
}
