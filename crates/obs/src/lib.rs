//! Observability core for foxq: histograms, spans, and trace sinks.
//!
//! Zero-dependency (std only), mirroring the house style of
//! `foxq_server::reactor`. Three pieces, layered so the engine crates
//! stay free of any global state:
//!
//! - [`Histogram`]: fixed-bucket latency histogram with atomic buckets,
//!   lock-free recording, and Prometheus text exposition
//!   (`_bucket`/`_sum`/`_count` with cumulative `le` buckets).
//! - [`TraceContext`] / [`Span`]: a per-request accumulator of
//!   per-[`Stage`] wall time, driven by RAII guards over monotonic
//!   clocks. Snapshots out to a [`StageTimes`] value that renders as a
//!   `Server-Timing` header or a CLI stage table.
//! - [`TraceSink`] implementations: [`RingSink`] (bounded in-memory
//!   ring for `/debug/requests`) and [`JsonlSink`] (size-capped,
//!   rotating JSONL file for `foxq serve --trace-log`).
//! - A counting `#[global_allocator]` wrapper (`alloc`): process-wide
//!   allocation/free/live/peak counters ([`alloc_snapshot`]),
//!   per-thread scoped deltas ([`AllocScope`]) so a worker can bill a
//!   single run, and RSS sampling ([`read_rss_bytes`]).
//!
//! The stage taxonomy ([`Stage`]) is shared across the stack: the
//! compile pipeline (`foxq_service`), the engines (`foxq_core`), the
//! tape store (`foxq_store`), and the HTTP layer (`foxq_server`) all
//! report through the same stage names.

mod alloc;
mod histogram;
mod sink;
mod span;

pub use alloc::{alloc_snapshot, read_rss_bytes, AllocDelta, AllocScope, AllocSnapshot};
pub use histogram::Histogram;
pub use sink::{JsonlSink, RingSink, TraceRecord, TraceSink, DEFAULT_TRACE_LOG_MAX_BYTES};
pub use span::{Span, StageTimes, TraceContext};

/// Pipeline stages shared across the stack.
///
/// Every timed region in foxq is attributed to exactly one of these.
/// The order is the order stages run in for a typical request; renderers
/// preserve it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Query text to AST (`foxq_xquery::parse_query`).
    Parse,
    /// AST to macro forest transducer (`foxq_tt::translate`).
    Translate,
    /// MFT rewriting: inlining, dead-state elimination (`foxq_tt::optimize`).
    Optimize,
    /// Prepared-query cache probe, including waiting on the cache lock.
    CacheLookup,
    /// Engine event loop over a parsed XML stream.
    Execute,
    /// Engine event loop over a FET1 tape (corpus path).
    TapeReplay,
    /// Forward seeks over prefiltered subtrees within a tape.
    TapeSeek,
    /// Merging and advancing FET2 posting lists on the index read path.
    IndexProbe,
    /// Output forest to response bytes.
    Serialize,
    /// Request start to the first irrevocable emission flush on a
    /// streamed response — the engine-side half of TTFB.
    FirstFlush,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Parse,
        Stage::Translate,
        Stage::Optimize,
        Stage::CacheLookup,
        Stage::Execute,
        Stage::TapeReplay,
        Stage::TapeSeek,
        Stage::IndexProbe,
        Stage::Serialize,
        Stage::FirstFlush,
    ];

    /// Number of stages (array dimension for per-stage storage).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lowercase name used in metric labels, Server-Timing
    /// entries, and the CLI stage table.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Translate => "translate",
            Stage::Optimize => "optimize",
            Stage::CacheLookup => "cache_lookup",
            Stage::Execute => "execute",
            Stage::TapeReplay => "tape_replay",
            Stage::TapeSeek => "tape_seek",
            Stage::IndexProbe => "index_probe",
            Stage::Serialize => "serialize",
            Stage::FirstFlush => "first_flush",
        }
    }

    /// Index into per-stage arrays; inverse of `ALL[idx]`.
    pub fn idx(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Translate => 1,
            Stage::Optimize => 2,
            Stage::CacheLookup => 3,
            Stage::Execute => 4,
            Stage::TapeReplay => 5,
            Stage::TapeSeek => 6,
            Stage::IndexProbe => 7,
            Stage::Serialize => 8,
            Stage::FirstFlush => 9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_roundtrip() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.idx(), i);
        }
        assert_eq!(Stage::COUNT, Stage::ALL.len());
    }

    #[test]
    fn stage_names_unique() {
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }
}
